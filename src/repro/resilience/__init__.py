"""Resilient synchronization over faulty links.

The protocols in :mod:`repro.core`, :mod:`repro.multiround` and
:mod:`repro.rsync` assume a lossless ordered channel; this package makes
a whole collection update survive the channel breaking that promise:

* :class:`~repro.resilience.retry.RetryPolicy` — bounded attempts with
  exponential backoff, charged to :class:`~repro.net.LinkModel`
  wall-clock estimates (the simulation never sleeps).
* :class:`~repro.resilience.supervisor.SyncSupervisor` — wraps any
  :class:`~repro.syncmethod.SyncMethod`; on a recoverable failure it
  retries the attempt, then degrades down a fallback ladder
  (multiround → rsync → full transfer), recording which rung finally
  succeeded plus the retry and retransmission cost.
* :mod:`~repro.resilience.checkpoint` — durable, CRC-guarded per-file
  journals of round-boundary protocol state, so a retry (or a restarted
  process) resumes from the last completed round instead of round 0.
* :mod:`~repro.resilience.recovery` — the resume handshake that lets two
  endpoints agree on a journal head, and the startup sweep that cleans a
  replica directory after a crash (quarantining interrupted atomic
  writes, listing resumable journals).
* :mod:`~repro.resilience.health` / :mod:`~repro.resilience.adaptive` —
  the health-aware layer: a windowed
  :class:`~repro.resilience.health.LinkHealthMonitor` scoring the link
  from per-attempt evidence, an
  :class:`~repro.resilience.adaptive.AdaptiveRetryPolicy` doing AIMD
  backoff with deterministic jitter and failure-signature ladder
  routing, per-file circuit breakers
  (:class:`~repro.resilience.adaptive.BreakerBoard`), and simulated-time
  deadline budgets
  (:class:`~repro.resilience.adaptive.DeadlineBudget`).

See DESIGN.md §9 ("Failure model & recovery"), §10 ("Resumable
sessions & crash recovery") and §14 ("Adaptive link-health
resilience").
"""

from repro.resilience.adaptive import (
    AdaptiveRetryPolicy,
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    DeadlineBudget,
)
from repro.resilience.checkpoint import (
    CheckpointStore,
    RoundCheckpoint,
    SessionIdentity,
    SessionJournal,
    config_digest,
)
from repro.resilience.recovery import (
    PHASE_RESUME,
    QUARANTINE_DIR,
    RecoveryReport,
    attempt_resume,
    quarantine_entry,
    recover_store,
)
from repro.resilience.health import (
    AttemptEvidence,
    FailureSignature,
    LinkHealthMonitor,
    TRANSIENT_SIGNATURES,
    classify_failure,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    RECOVERABLE_ERRORS,
    SyncSupervisor,
    default_ladder,
)

__all__ = [
    "AdaptiveRetryPolicy",
    "AttemptEvidence",
    "BreakerBoard",
    "BreakerState",
    "CheckpointStore",
    "CircuitBreaker",
    "DeadlineBudget",
    "FailureSignature",
    "LinkHealthMonitor",
    "PHASE_RESUME",
    "QUARANTINE_DIR",
    "RECOVERABLE_ERRORS",
    "RecoveryReport",
    "RetryPolicy",
    "RoundCheckpoint",
    "SessionIdentity",
    "SessionJournal",
    "SyncSupervisor",
    "TRANSIENT_SIGNATURES",
    "attempt_resume",
    "classify_failure",
    "config_digest",
    "default_ladder",
    "quarantine_entry",
    "recover_store",
]
