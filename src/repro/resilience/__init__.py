"""Resilient synchronization over faulty links.

The protocols in :mod:`repro.core`, :mod:`repro.multiround` and
:mod:`repro.rsync` assume a lossless ordered channel; this package makes
a whole collection update survive the channel breaking that promise:

* :class:`~repro.resilience.retry.RetryPolicy` — bounded attempts with
  exponential backoff, charged to :class:`~repro.net.LinkModel`
  wall-clock estimates (the simulation never sleeps).
* :class:`~repro.resilience.supervisor.SyncSupervisor` — wraps any
  :class:`~repro.syncmethod.SyncMethod`; on a recoverable failure it
  retries the attempt, then degrades down a fallback ladder
  (multiround → rsync → full transfer), recording which rung finally
  succeeded plus the retry and retransmission cost.

See DESIGN.md §9 ("Failure model & recovery").
"""

from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    RECOVERABLE_ERRORS,
    SyncSupervisor,
    default_ladder,
)

__all__ = [
    "RECOVERABLE_ERRORS",
    "RetryPolicy",
    "SyncSupervisor",
    "default_ladder",
]
