"""Bounded retry with exponential backoff, in simulated time.

Nothing here sleeps: the simulation charges backoff to the same
wall-clock estimate that :class:`~repro.net.LinkModel` produces for
transfers, so benchmark rows can report how long recovery *would* take
on a given link without the test suite actually waiting for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently one ladder rung is retried.

    ``max_attempts`` bounds tries per rung (1 = no retry, fail straight
    to the next rung); after failed attempt *k* (1-based) the protocol
    backs off ``base_backoff_s * multiplier**(k-1)`` seconds, capped at
    ``max_backoff_s``.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0:
            raise ValueError(
                f"base_backoff_s must be non-negative, got "
                f"{self.base_backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")

    def _saturation_exponent(self) -> int:
        """Smallest ``e >= 0`` with ``base * multiplier**e >= cap``.

        From that exponent on the schedule is pinned to ``max_backoff_s``,
        so powers past it never need computing — which is also what keeps
        ``multiplier ** k`` from overflowing a float for large attempt
        counts.  The log estimate is corrected by direct probing because
        ``log`` can land either side of an exact power boundary.
        """
        base, m, cap = self.base_backoff_s, self.multiplier, self.max_backoff_s
        if base >= cap:
            return 0
        exponent = max(0, math.ceil(math.log(cap / base, m)))
        while exponent > 0 and base * m ** (exponent - 1) >= cap:
            exponent -= 1
        while base * m ** exponent < cap:
            exponent += 1
        return exponent

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Backoff charged after the ``failed_attempts``-th failure."""
        if failed_attempts < 1:
            raise ValueError(
                f"failed_attempts must be >= 1, got {failed_attempts}"
            )
        if self.base_backoff_s == 0.0:
            return 0.0
        if self.multiplier == 1.0:
            return self.base_backoff_s
        if failed_attempts - 1 >= self._saturation_exponent():
            return self.max_backoff_s
        return min(
            self.base_backoff_s * self.multiplier ** (failed_attempts - 1),
            self.max_backoff_s,
        )

    def total_backoff_seconds(self, failed_attempts: int) -> float:
        """Cumulative backoff across ``failed_attempts`` failures.

        Closed form: the un-saturated prefix is a geometric series, every
        later term is the cap — O(1) instead of recomputing the whole
        schedule, and safe for attempt counts where ``multiplier ** k``
        would overflow.
        """
        n = failed_attempts
        if n <= 0:
            return 0.0
        if self.base_backoff_s == 0.0:
            return 0.0
        if self.multiplier == 1.0:
            return n * self.base_backoff_s
        unsaturated = min(n, self._saturation_exponent())
        geometric = (
            self.base_backoff_s
            * (self.multiplier ** unsaturated - 1.0)
            / (self.multiplier - 1.0)
        )
        return geometric + (n - unsaturated) * self.max_backoff_s
