"""Durable round checkpoints for resumable synchronization sessions.

Multi-round reconciliation accumulates state the link already paid for:
every completed round pins down map regions that never need to be hashed
again.  PR 2's supervisor nevertheless restarted a failed session from
round 0, re-buying all of it.  This module makes that accumulated state
*durable*: after each completed protocol round both endpoints snapshot
their reconciliation state into a journal record, and a later attempt
(same process or a restarted one) can continue from the last completed
round instead of from scratch.

Journal format
--------------
A journal is a sequence of CRC32-guarded frames (the exact framing of
:mod:`repro.net.frame`, reused so corruption detection is shared with the
wire path).  Each frame payload is one record::

    version (1 B) | kind (1 B) | kind-specific body (varint-serialized)

* ``HEADER`` — the session identity: protocol name, fingerprints of both
  files, and a digest of the protocol configuration.  A journal whose
  header does not match the session being resumed is refused.
* ``ROUND`` — one completed round: round index, an opaque
  protocol-specific state blob, and the cumulative transfer counters at
  the boundary (so a resumed run's accounting continues seamlessly).
* ``COMMIT`` — the session finished; any following resume attempt is
  refused (there is nothing left to salvage).

Records are append-only and each append is flushed and fsynced, so a
crash can at worst tear the *last* record — the loader stops at the
first short or CRC-failing frame and resumes from the previous round.
"""

from __future__ import annotations

import hashlib
import os
import re
import signal
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import FrameCorruptionError, ReproError
from repro.io.varint import decode_uvarint, encode_uvarint
from repro.net.frame import FRAME_OVERHEAD, decode_frame, encode_frame
from repro.net.metrics import Direction, TransferStats

#: Journal record format version; bumped on incompatible changes.
JOURNAL_VERSION = 1

_KIND_HEADER = 0x01
_KIND_ROUND = 0x02
_KIND_COMMIT = 0x03

#: Fault-injection hook for crash tests: when set to an integer N, the
#: process SIGKILLs itself immediately after durably writing its Nth
#: checkpoint record — modelling a crash between two protocol rounds.
CRASH_AFTER_CHECKPOINTS_ENV = "REPRO_CRASH_AFTER_CHECKPOINTS"
_checkpoints_written = 0


class CheckpointFormatError(ReproError):
    """A checkpoint journal could not be parsed (beyond a torn tail)."""


# ----------------------------------------------------------------------
# Varint-based serialization helpers
# ----------------------------------------------------------------------

def _pack_bytes(out: bytearray, data: bytes) -> None:
    out += encode_uvarint(len(data))
    out += data


def _pack_str(out: bytearray, text: str) -> None:
    _pack_bytes(out, text.encode("utf-8"))


def _unpack_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    length, offset = decode_uvarint(data, offset)
    if offset + length > len(data):
        raise CheckpointFormatError("truncated byte field in record")
    return data[offset : offset + length], offset + length


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _unpack_bytes(data, offset)
    return raw.decode("utf-8"), offset


def config_digest(config: object) -> bytes:
    """16-byte digest of a configuration dataclass.

    ``repr`` of a (frozen) dataclass lists every field deterministically,
    so two endpoints (or two processes) agree on the digest exactly when
    they agree on every tunable — including hash seeds, which is what
    makes resumed hash exchanges comparable at all.
    """
    return hashlib.blake2b(repr(config).encode("utf-8"), digest_size=16).digest()


@dataclass(frozen=True)
class SessionIdentity:
    """What a checkpoint journal is *about*; resume requires equality.

    A head whose identity differs from the session being resumed — the
    file changed under us, a different protocol, different tunables —
    must be refused: its pinned regions describe a different exchange.
    """

    protocol: str
    old_fingerprint: bytes
    new_fingerprint: bytes
    config_digest: bytes

    def encode(self) -> bytes:
        out = bytearray()
        _pack_str(out, self.protocol)
        _pack_bytes(out, self.old_fingerprint)
        _pack_bytes(out, self.new_fingerprint)
        _pack_bytes(out, self.config_digest)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "SessionIdentity":
        protocol, offset = _unpack_str(data, 0)
        old_fp, offset = _unpack_bytes(data, offset)
        new_fp, offset = _unpack_bytes(data, offset)
        cfg, _offset = _unpack_bytes(data, offset)
        return cls(protocol, old_fp, new_fp, cfg)


@dataclass(frozen=True)
class RoundCheckpoint:
    """State of one session at a completed round boundary.

    ``payload`` is an opaque protocol-specific blob (the protocols define
    their own round-state serialization); the transfer counters record
    the cumulative wire traffic *up to* the boundary so a resumed channel
    can be seeded and the combined accounting stays byte-exact.
    """

    round_index: int
    payload: bytes
    bits_by: tuple[tuple[str, str, int], ...]  # (direction, phase, bits)
    messages: int
    roundtrips: int

    @classmethod
    def at_boundary(
        cls, round_index: int, payload: bytes, stats: TransferStats
    ) -> "RoundCheckpoint":
        bits = tuple(
            (direction.value, phase, nbits)
            for (direction, phase), nbits in sorted(
                stats.bits_by.items(),
                key=lambda item: (item[0][0].value, item[0][1]),
            )
        )
        return cls(round_index, payload, bits, stats.messages, stats.roundtrips)

    # -- accounting views ----------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum((nbits + 7) // 8 for _d, _p, nbits in self.bits_by)

    def bytes_in_direction(self, direction: Direction) -> int:
        return sum(
            (nbits + 7) // 8
            for d, _p, nbits in self.bits_by
            if d == direction.value
        )

    def seed_stats(self, stats: TransferStats) -> None:
        """Fold the checkpointed counters into a fresh channel's stats."""
        for d, phase, nbits in self.bits_by:
            stats.bits_by[(Direction(d), phase)] += nbits
        stats.messages += self.messages
        stats.roundtrips += self.roundtrips

    # -- serialization --------------------------------------------------
    def encode(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.round_index)
        _pack_bytes(out, self.payload)
        out += encode_uvarint(len(self.bits_by))
        for direction, phase, nbits in self.bits_by:
            _pack_str(out, direction)
            _pack_str(out, phase)
            out += encode_uvarint(nbits)
        out += encode_uvarint(self.messages)
        out += encode_uvarint(self.roundtrips)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "RoundCheckpoint":
        round_index, offset = decode_uvarint(data, 0)
        payload, offset = _unpack_bytes(data, offset)
        count, offset = decode_uvarint(data, offset)
        bits = []
        for _ in range(count):
            direction, offset = _unpack_str(data, offset)
            phase, offset = _unpack_str(data, offset)
            nbits, offset = decode_uvarint(data, offset)
            bits.append((direction, phase, nbits))
        messages, offset = decode_uvarint(data, offset)
        roundtrips, _offset = decode_uvarint(data, offset)
        return cls(round_index, payload, tuple(bits), messages, roundtrips)

    def digest(self) -> bytes:
        """16-byte fingerprint of the record, used by the resume handshake."""
        return hashlib.blake2b(self.encode(), digest_size=16).digest()


def _encode_record(kind: int, body: bytes) -> bytes:
    return encode_frame(bytes([JOURNAL_VERSION, kind]) + body)


def _iter_records(raw: bytes):
    """Yield ``(kind, body)`` for every intact record; stop at the first
    torn or corrupt frame (a crash can only tear the tail)."""
    offset = 0
    while offset + FRAME_OVERHEAD <= len(raw):
        length = int.from_bytes(raw[offset : offset + 4], "big")
        end = offset + FRAME_OVERHEAD + length
        if end > len(raw):
            return  # torn tail
        try:
            record = decode_frame(raw[offset:end])
        except FrameCorruptionError:
            return
        if len(record) < 2 or record[0] != JOURNAL_VERSION:
            return
        yield record[1], record[2:]
        offset = end


class SessionJournal:
    """Append-only checkpoint journal for one file's sync session.

    With a ``path`` the journal is durable: every record is appended,
    flushed and fsynced, so it survives a process crash and a later run
    can resume from it.  With ``path=None`` it is memory-only — resume
    still works across the retry attempts of one supervisor call (the
    common mid-session disconnect case) without touching the filesystem.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        #: Serialized bytes durably written by *this* journal instance.
        self.bytes_written = 0
        self._identity: SessionIdentity | None = None
        self._head: RoundCheckpoint | None = None
        self._header_written = False

    @property
    def identity(self) -> SessionIdentity | None:
        return self._identity

    # ------------------------------------------------------------------
    def open(self, identity: SessionIdentity, resume: bool = False) -> None:
        """Bind the journal to a session identity.

        With ``resume`` an existing on-disk journal whose header matches
        ``identity`` contributes its last intact round record as the
        resume head; anything else (missing, committed, mismatched or
        corrupt journal) starts fresh.  Re-opening under a *different*
        identity (a fallback-ladder rung taking over) always discards the
        previous head.
        """
        if self._identity == identity:
            return
        self._identity = identity
        self._head = None
        self._header_written = False
        if resume and self.path is not None and self.path.exists():
            stored, head = self._load(self.path)
            if stored == identity and head is not None:
                self._head = head
                self._header_written = True

    @staticmethod
    def _load(
        path: Path,
    ) -> tuple[SessionIdentity | None, RoundCheckpoint | None]:
        try:
            raw = path.read_bytes()
        except OSError:
            return None, None
        identity: SessionIdentity | None = None
        head: RoundCheckpoint | None = None
        try:
            for kind, body in _iter_records(raw):
                if kind == _KIND_HEADER:
                    identity = SessionIdentity.decode(body)
                elif kind == _KIND_ROUND:
                    head = RoundCheckpoint.decode(body)
                elif kind == _KIND_COMMIT:
                    head = None  # finished session: nothing to salvage
        except (CheckpointFormatError, ValueError):
            pass  # stop at the first undecodable record
        return identity, head

    # ------------------------------------------------------------------
    def head(self) -> RoundCheckpoint | None:
        """The last durable round checkpoint for the bound identity."""
        return self._head

    def record_round(
        self, round_index: int, payload: bytes, stats: TransferStats
    ) -> RoundCheckpoint:
        """Snapshot one completed round; returns the durable record."""
        if self._identity is None:
            raise CheckpointFormatError(
                "journal must be open()ed before recording rounds"
            )
        checkpoint = RoundCheckpoint.at_boundary(round_index, payload, stats)
        frames = bytearray()
        if not self._header_written:
            frames += _encode_record(_KIND_HEADER, self._identity.encode())
        frames += _encode_record(_KIND_ROUND, checkpoint.encode())
        self._append(bytes(frames), fresh=not self._header_written)
        self._header_written = True
        self._head = checkpoint
        self.bytes_written += len(frames)
        _crash_hook()
        return checkpoint

    def commit(self) -> None:
        """Mark the session complete; the journal is no longer needed."""
        self._head = None
        self._header_written = False
        if self.path is not None and self.path.exists():
            try:
                self.path.unlink()
            except OSError:
                # Best effort: a leftover committed journal is refused at
                # resume time anyway via the COMMIT record below.
                self._append(_encode_record(_KIND_COMMIT, b""), fresh=False)

    # ------------------------------------------------------------------
    def _append(self, frames: bytes, fresh: bool) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "wb" if fresh else "ab"
        with open(self.path, mode) as handle:
            handle.write(frames)
            handle.flush()
            os.fsync(handle.fileno())


def _crash_hook() -> None:
    """SIGKILL ourselves after N durable checkpoints (crash tests only)."""
    budget = os.environ.get(CRASH_AFTER_CHECKPOINTS_ENV)
    if budget is None:
        return
    global _checkpoints_written
    _checkpoints_written += 1
    if _checkpoints_written >= int(budget):
        os.kill(os.getpid(), signal.SIGKILL)


class CheckpointStore:
    """Factory of per-file session journals for a collection update.

    ``root=None`` keeps journals in memory (resume works across retry
    attempts within one process); a directory makes them durable, one
    file per collection entry, so a *restarted* run started with
    ``resume=True`` can pick every interrupted file up at its last
    completed round.  Instances are picklable and cheap, so the parallel
    executor can ship them to worker processes.
    """

    def __init__(self, root: str | Path | None = None, resume: bool = False) -> None:
        self.root = Path(root) if root is not None else None
        self.resume = resume

    @classmethod
    def in_memory(cls) -> "CheckpointStore":
        return cls(None)

    def journal(self, name: str | None) -> SessionJournal:
        if self.root is None:
            return SessionJournal(None)
        self.root.mkdir(parents=True, exist_ok=True)
        label = name if name else "<unnamed>"
        slug = re.sub(r"[^A-Za-z0-9._-]", "_", label)[:80].strip("._") or "file"
        tag = hashlib.blake2b(label.encode("utf-8"), digest_size=8).hexdigest()
        return SessionJournal(self.root / f"{slug}-{tag}.ckpt")

    def pending(self) -> list[Path]:
        """Journal files currently on disk (crashed/unfinished sessions)."""
        if self.root is None or not self.root.exists():
            return []
        return sorted(self.root.glob("*.ckpt"))
