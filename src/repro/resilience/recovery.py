"""Crash recovery: the resume handshake and the store startup sweep.

Two recovery paths live here, both *cheap relative to what they save*:

* :func:`attempt_resume` — before re-running a torn session from round 0,
  the endpoints spend a few bytes agreeing that their checkpoint journals
  describe the same boundary (round index + a 16-byte digest of the round
  record).  On agreement the session continues from the last completed
  round; on any disagreement — or no checkpoint at all — the caller falls
  back to the ordinary restart, having lost only the handshake.
* :func:`recover_store` — after a process crash, the replica directory
  may hold orphaned temporaries from interrupted atomic writes (never
  torn *visible* files — see :mod:`repro.collection.store`).  The sweep
  quarantines them and reports which manifest entries are missing or
  stale, so the next sync knows exactly what is left to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction
from repro.resilience.checkpoint import (
    RoundCheckpoint,
    SessionIdentity,
    SessionJournal,
)

#: Phase label the resume handshake's traffic is charged under, so its
#: cost is visible (and attributable) in every breakdown.
PHASE_RESUME = "resume"


def attempt_resume(
    journal: SessionJournal,
    identity: SessionIdentity,
    channel: SimulatedChannel,
) -> tuple[RoundCheckpoint | None, int]:
    """Try to agree on resuming ``journal``'s head over ``channel``.

    Returns ``(checkpoint, handshake_bits)``.  ``checkpoint`` is ``None``
    when there is nothing to salvage (no head, or the journal describes a
    different session) — the caller then runs the session from scratch.
    On success the checkpoint's cumulative transfer counters are folded
    into ``channel.stats``, so the resumed run's accounting continues
    exactly where the interrupted run's stopped, with the handshake
    charged on top under :data:`PHASE_RESUME`.

    The handshake itself crosses the (possibly faulty) channel, so it can
    die of the same recoverable errors as any round — callers supervise
    it together with the attempt it precedes.
    """
    head = journal.head()
    if head is None or journal.identity != identity:
        return None, 0

    # client → server: the boundary I can restart from.
    proposal = BitWriter()
    proposal.write_uvarint(head.round_index)
    proposal.write_bytes(head.digest())
    channel.send(
        Direction.CLIENT_TO_SERVER,
        proposal.getvalue(),
        PHASE_RESUME,
        bits=proposal.bit_length,
    )
    reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    proposed_round = reader.read_uvarint()
    proposed_digest = reader.read_bytes(16)

    # server → client: one bit — my journal head agrees (both endpoints
    # share the journal in this in-process simulation, but the check is
    # performed on the *received* values, as a real deployment would).
    agreed = (
        proposed_round == head.round_index and proposed_digest == head.digest()
    )
    channel.send(
        Direction.SERVER_TO_CLIENT,
        b"\x01" if agreed else b"\x00",
        PHASE_RESUME,
        bits=1,
    )
    ack = channel.receive(Direction.SERVER_TO_CLIENT) == b"\x01"
    handshake_bits = proposal.bit_length + 1
    if not ack:
        return None, handshake_bits
    head.seed_stats(channel.stats)
    return head, handshake_bits


# ----------------------------------------------------------------------
# Store recovery
# ----------------------------------------------------------------------

QUARANTINE_DIR = ".repro-quarantine"


def quarantine_entry(root: str | Path, source: Path, copy: bool = False) -> Path:
    """Put ``source`` into ``root/.repro-quarantine/`` for post-mortems.

    The quarantine name is the source's, suffixed with a serial when a
    previous incident already parked the same name.  ``copy=False``
    (crash sweep) *moves* the file out of the visible tree; ``copy=True``
    (scrubber) leaves the original in place — the divergent bytes stay
    usable as a delta base for the repair sync while the evidence is
    preserved.
    """
    root = Path(root)
    quarantine = root / QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    target = quarantine / source.name
    serial = 0
    while target.exists():
        serial += 1
        target = quarantine / f"{source.name}.{serial}"
    if copy:
        target.write_bytes(source.read_bytes())
    else:
        source.replace(target)
    return target


@dataclass
class RecoveryReport:
    """What a startup sweep of a replica directory found and did."""

    root: Path
    #: Orphaned atomic-write temporaries moved into the quarantine dir.
    quarantined: list[Path] = field(default_factory=list)
    #: Manifest entries with no visible file (the crash preceded them).
    missing: list[str] = field(default_factory=list)
    #: Manifest entries whose visible bytes mismatch the fingerprint.
    stale: list[str] = field(default_factory=list)
    #: Checkpoint journals left by interrupted sessions (resumable).
    pending_journals: list[Path] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.quarantined or self.missing or self.stale
            or self.pending_journals
        )


def recover_store(
    root: str | Path,
    manifest=None,
    checkpoint_dir: str | Path | None = None,
) -> RecoveryReport:
    """Sweep a replica directory after a crash.

    Every ``*.repro.tmp`` temporary is an interrupted atomic write — its
    visible counterpart is either the intact previous version or absent,
    never torn — and is moved under ``root/.repro-quarantine/`` (contents
    preserved for post-mortems, name suffixed to avoid collisions).  With
    a ``manifest`` the visible files are checked against their recorded
    fingerprints; with a ``checkpoint_dir`` the leftover session journals
    are listed so the caller can rerun with ``resume=True``.
    """
    from repro.collection.store import TMP_SUFFIX
    from repro.hashing.strong import file_fingerprint

    root = Path(root)
    report = RecoveryReport(root=root)
    if root.is_dir():
        quarantine = root / QUARANTINE_DIR
        for temp in sorted(root.rglob(f"*{TMP_SUFFIX}")):
            if quarantine in temp.parents:
                continue
            report.quarantined.append(quarantine_entry(root, temp))

    if manifest is not None:
        for name in sorted(manifest.entries):
            path = root / name
            if not path.is_file():
                report.missing.append(name)
            elif file_fingerprint(path.read_bytes()) != manifest.entries[name]:
                report.stale.append(name)

    if checkpoint_dir is not None:
        checkpoint_root = Path(checkpoint_dir)
        if checkpoint_root.is_dir():
            report.pending_journals = sorted(checkpoint_root.glob("*.ckpt"))
    return report
