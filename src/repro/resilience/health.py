"""Windowed link-health estimation from per-attempt evidence.

The supervisor already *sees* everything a link does to it — corrupted
frames, dropped messages, disconnects, the retransmission bill of every
failed attempt — but until now it threw that evidence away between
attempts.  This module folds it into a single number:

* :class:`AttemptEvidence` — what one sync attempt observed: whether it
  succeeded, which fault kinds it suffered (taken from the
  :class:`~repro.net.faults.FaultPlan` log when available, otherwise
  classified from the raised error), the retransmitted vs. useful bits,
  and how many protocol rounds completed or were salvaged from
  checkpoints.
* :class:`LinkHealthMonitor` — a sliding window over recent attempts
  producing a ``score`` in ``[0, 1]``.  A pristine link scores exactly
  ``1.0`` (so the happy path reports the untouched default), a link that
  kills every attempt scores ``0.0``, and partial credit is given for
  attempts whose checkpointed rounds survived to be resumed.
* :class:`FailureSignature` / :func:`classify_failure` — the coarse
  taxonomy the adaptive supervisor routes on: corruption and drops are
  transient (retry the same rung), a disconnect is best answered by a
  checkpoint resume, and a decode/verification failure means the rung
  itself is beaten (descend the ladder).

Everything here is pure bookkeeping — no clocks, no randomness — so the
monitor is deterministic and picklable alongside the supervisor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import (
    ChannelClosedError,
    ChannelEmptyError,
    ChecksumMismatchError,
    DeltaFormatError,
    FrameCorruptionError,
    IntegrityError,
    ProtocolError,
    SyncStalledError,
)


class FailureSignature:
    """Coarse failure taxonomy for ladder routing (string enum).

    Plain strings rather than :class:`enum.Enum` so signatures serialise
    naturally into retry histories and soak reports.
    """

    CORRUPTION = "corruption"    # mangled/truncated frame: transient
    DROP = "drop"                # message vanished: transient
    DISCONNECT = "disconnect"    # link torn down: resume from checkpoint
    COLLISION = "collision"      # checksum mismatch: repair now, same rung
    DECODE = "decode"            # delta/verification failed: rung is beaten
    STALL = "stall"              # round circuit tripped: rung is beaten
    PROTOCOL = "protocol"        # malformed exchange: rung is beaten


#: Signatures the adaptive router answers by staying on the same rung.
#: A collision belongs here: the rung itself works — one unlucky truncated
#: hash matched the wrong block — so the answer is an immediate repair
#: retry on the same rung, not a descent to a coarser method.
TRANSIENT_SIGNATURES = frozenset(
    {FailureSignature.CORRUPTION, FailureSignature.DROP,
     FailureSignature.DISCONNECT, FailureSignature.COLLISION}
)


def classify_failure(error: BaseException) -> str:
    """Map a recoverable error to its :class:`FailureSignature`.

    Order matters: :class:`ChannelEmptyError` (a dropped message) is a
    subclass of :class:`ChannelClosedError` (the link is gone),
    :class:`ChecksumMismatchError` (a repairable collision) of
    :class:`IntegrityError` (decode corruption), and
    :class:`SyncStalledError` of :class:`ProtocolError`.
    """
    if isinstance(error, FrameCorruptionError):
        return FailureSignature.CORRUPTION
    if isinstance(error, ChannelEmptyError):
        return FailureSignature.DROP
    if isinstance(error, ChannelClosedError):
        return FailureSignature.DISCONNECT
    if isinstance(error, ChecksumMismatchError):
        return FailureSignature.COLLISION
    if isinstance(error, (DeltaFormatError, IntegrityError)):
        return FailureSignature.DECODE
    if isinstance(error, SyncStalledError):
        return FailureSignature.STALL
    if isinstance(error, ProtocolError):
        return FailureSignature.PROTOCOL
    return FailureSignature.PROTOCOL


@dataclass(frozen=True)
class AttemptEvidence:
    """What one sync attempt taught us about the link."""

    ok: bool
    signature: str | None = None
    corruption_events: int = 0
    drop_events: int = 0
    disconnect_events: int = 0
    retransmitted_bits: int = 0
    payload_bits: int = 0
    rounds_completed: int = 0
    rounds_salvaged: int = 0

    @property
    def fault_events(self) -> int:
        return (
            self.corruption_events
            + self.drop_events
            + self.disconnect_events
        )

    def attempt_score(self) -> float:
        """Health contribution of this one attempt, in ``[0, 1]``.

        * A clean success is ``1.0`` — no decay on the happy path.
        * A success that needed the link to absorb faults is discounted
          by the fraction of its traffic that was retransmission.
        * A failure whose rounds survived in a checkpoint journal scores
          ``0.25`` (the link is bad but progress sticks); a total loss
          scores ``0.0``.
        """
        if self.ok:
            if self.fault_events == 0 and self.retransmitted_bits == 0:
                return 1.0
            useful = max(1, self.payload_bits)
            wasted = self.retransmitted_bits / (useful + self.retransmitted_bits)
            return max(0.0, 1.0 - wasted)
        if self.rounds_salvaged > 0 or self.rounds_completed > 0:
            return 0.25
        return 0.0


class LinkHealthMonitor:
    """Sliding-window health score over recent attempt evidence.

    ``window`` bounds memory: an ancient outage stops depressing the
    score once enough clean attempts displace it.  ``score`` is the mean
    attempt score of the window — exactly ``1.0`` until the first blemish
    (the collection layer relies on that to keep happy-path reports
    byte-identical).  ``clean_streak`` counts consecutive trailing
    successes and is what lets the AIMD policy tighten again.
    """

    def __init__(self, window: int = 16) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._attempts: deque[AttemptEvidence] = deque(maxlen=window)
        self.clean_streak = 0
        self.attempts_seen = 0
        self.failures_seen = 0

    def record(self, evidence: AttemptEvidence) -> None:
        self._attempts.append(evidence)
        self.attempts_seen += 1
        if evidence.ok and evidence.fault_events == 0:
            self.clean_streak += 1
        else:
            self.clean_streak = 0
        if not evidence.ok:
            self.failures_seen += 1

    @property
    def score(self) -> float:
        if not self._attempts:
            return 1.0
        return sum(e.attempt_score() for e in self._attempts) / len(
            self._attempts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkHealthMonitor(score={self.score:.3f}, "
            f"attempts={self.attempts_seen}, failures={self.failures_seen}, "
            f"clean_streak={self.clean_streak})"
        )


@dataclass
class FaultLogDelta:
    """Counts of fault events observed during one attempt.

    Built by diffing a :class:`~repro.net.faults.FaultPlan`'s log length
    before and after the attempt, so evidence reflects only *this*
    attempt's faults even though the plan is shared across attempts.
    """

    corruption: int = 0
    drops: int = 0
    disconnects: int = 0

    events: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.events = self.corruption + self.drops + self.disconnects


def fault_delta(plan, mark: int) -> FaultLogDelta:
    """Summarise plan faults recorded at or past log index ``mark``."""
    from repro.net.faults import FaultKind

    corruption = drops = disconnects = 0
    if plan is not None:
        for event in plan.fault_log[mark:]:
            if event.kind in (
                FaultKind.CORRUPT, FaultKind.TRUNCATE, FaultKind.COLLIDE
            ):
                corruption += 1
            elif event.kind is FaultKind.DROP:
                drops += 1
            elif event.kind is FaultKind.DISCONNECT:
                disconnects += 1
    return FaultLogDelta(corruption, drops, disconnects)
