"""A supervisor that drives any sync method to completion on faulty links.

One file, one :class:`SyncSupervisor.sync_file` call.  The supervisor
runs the primary method over a fresh channel; when the attempt dies of a
recoverable error — a corrupted or truncated frame, a dropped message, a
mid-protocol disconnect, a failed integrity check — it retries under the
:class:`~repro.resilience.retry.RetryPolicy`, then walks down a fallback
ladder of progressively coarser (and progressively harder to kill)
methods: multiround rsync → plain rsync → compressed full transfer.
Multi-round reconciliation only pays off if a failed round degrades
gracefully instead of restarting the world; the ladder is that
degradation made explicit, and the returned
:class:`~repro.syncmethod.MethodOutcome` records which rung succeeded,
how many attempts were burnt, and what the recovery cost on the wire and
in (estimated) wall-clock.

With a :class:`~repro.resilience.checkpoint.CheckpointStore` the
supervisor additionally makes retries *cheap*: checkpoint-capable rungs
journal their state at every round boundary, and each retry first runs
the resume handshake (:func:`~repro.resilience.recovery.attempt_resume`)
to continue from the last completed round instead of restarting.  Only
the traffic past the newest durable checkpoint is then charged as
retransmission — the salvaged rounds were *not* wasted.
"""

from __future__ import annotations

from repro.exceptions import (
    ChannelClosedError,
    DeltaFormatError,
    FrameCorruptionError,
    IntegrityError,
    ProtocolError,
    SyncFailedError,
)
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.faults import FaultPlan
from repro.net.metrics import Direction
from repro.resilience.checkpoint import CheckpointStore, RoundCheckpoint
from repro.resilience.retry import RetryPolicy
from repro.syncmethod import MethodOutcome, SyncMethod

#: Errors a retry can plausibly cure.  Everything else (ConfigError,
#: programming errors) propagates immediately.
RECOVERABLE_ERRORS = (
    FrameCorruptionError,
    ProtocolError,
    ChannelClosedError,  # includes ChannelEmptyError (dropped messages)
    IntegrityError,
    DeltaFormatError,
)


def default_ladder(primary: SyncMethod) -> list[SyncMethod]:
    """The degradation ladder below ``primary``: multiround → rsync → full.

    Rungs sharing the primary's name are dropped, so e.g. supervising
    plain rsync degrades straight to the full transfer.
    """
    from repro.bench.methods import (
        FullTransferMethod,
        MultiroundRsyncMethod,
        RsyncMethod,
    )

    ladder: list[SyncMethod] = [
        MultiroundRsyncMethod(),
        RsyncMethod(),
        FullTransferMethod(),
    ]
    return [rung for rung in ladder if rung.name != primary.name]


def _waste_after(
    channel: SimulatedChannel, head: "RoundCheckpoint | None"
) -> tuple[int, float]:
    """Wire bytes and wall-clock a failed attempt definitively burnt.

    Without a checkpoint head, everything the channel carried is waste
    (the PR-2 accounting, unchanged).  With one, traffic up to the head
    will be salvaged by the next attempt's resume — only the tail past
    the last durable boundary, plus link-level retransmissions, is lost.
    """
    stats = channel.stats
    if head is None:
        return (
            stats.total_bytes + stats.retransmitted_bytes,
            channel.estimated_transfer_time(),
        )
    c2s = max(
        0,
        stats.client_to_server_bytes
        - head.bytes_in_direction(Direction.CLIENT_TO_SERVER),
    )
    s2c = max(
        0,
        stats.server_to_client_bytes
        - head.bytes_in_direction(Direction.SERVER_TO_CLIENT),
    )
    roundtrips = max(0, stats.roundtrips - head.roundtrips)
    return (
        c2s + s2c + stats.retransmitted_bytes,
        channel.link.transfer_time_directional(c2s, s2c, roundtrips),
    )


class SyncSupervisor(SyncMethod):
    """Wrap a :class:`SyncMethod` with retry, backoff and fallback.

    Parameters
    ----------
    method:
        The primary per-file method.
    retry:
        Attempt budget and backoff schedule *per ladder rung*.
    ladder:
        Fallback methods tried in order once the primary's attempts are
        exhausted; defaults to :func:`default_ladder`.
    fault_plan:
        Optional :class:`~repro.net.faults.FaultPlan`; when given, every
        attempt runs over a fresh fault-injected channel advancing the
        shared plan (so retries see fresh randomness, not the same fault
        replayed).  Without a plan, attempts run over clean channels and
        the supervisor is pure pass-through on the happy path.
    link:
        Link model used for the channels and for pricing recovery time.
    checkpoints:
        Optional :class:`~repro.resilience.checkpoint.CheckpointStore`.
        When given, checkpoint-capable rungs journal every completed
        round and each retry attempts the resume handshake first,
        continuing from the last durable boundary.  ``None`` (default)
        reproduces PR-2 behaviour byte for byte.
    """

    def __init__(
        self,
        method: SyncMethod,
        retry: RetryPolicy | None = None,
        ladder: list[SyncMethod] | None = None,
        fault_plan: FaultPlan | None = None,
        link: LinkModel | None = None,
        checkpoints: CheckpointStore | None = None,
    ) -> None:
        self.method = method
        self.retry = retry or RetryPolicy()
        self.ladder = default_ladder(method) if ladder is None else ladder
        self.fault_plan = fault_plan
        self.link = link
        self.checkpoints = checkpoints
        self.name = f"supervised({method.name})"

    # ------------------------------------------------------------------
    def _make_channel(self) -> SimulatedChannel:
        if self.fault_plan is not None:
            return self.fault_plan.channel(self.link)
        return SimulatedChannel(self.link)

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair, surviving recoverable failures."""
        return self.sync_named_file(None, old, new)

    def sync_named_file(
        self, name: str | None, old: bytes, new: bytes
    ) -> MethodOutcome:
        """Synchronise one named file pair, surviving recoverable failures.

        ``name`` keys the per-file checkpoint journal (when a store is
        configured); ``None`` is valid and shares the anonymous journal.
        """
        from repro.resilience.recovery import attempt_resume

        retries = 0
        retransmitted_bytes = 0
        recovery_seconds = 0.0
        rounds_salvaged = 0
        resume_handshake_bits = 0
        checkpoint_bytes = 0
        history: list[str] = []

        for rung in [self.method, *self.ladder]:
            journal = None
            identity = None
            if self.checkpoints is not None and rung.supports_checkpoint:
                journal = self.checkpoints.journal(name)
                identity = rung.checkpoint_identity(old, new)
                journal.open(identity, resume=self.checkpoints.resume)
            for _attempt in range(self.retry.max_attempts):
                channel = self._make_channel()
                resume_state: RoundCheckpoint | None = None
                try:
                    if journal is not None:
                        resume_state, handshake_bits = attempt_resume(
                            journal, identity, channel
                        )
                        resume_handshake_bits += handshake_bits
                        outcome = rung.sync_file_resumable(
                            old,
                            new,
                            channel,
                            checkpointer=journal,
                            resume_from=resume_state,
                        )
                    else:
                        outcome = rung.sync_file_over(old, new, channel)
                    if not outcome.correct:
                        raise IntegrityError(
                            f"{rung.name} reconstructed the wrong bytes"
                        )
                except RECOVERABLE_ERRORS as error:
                    retries += 1
                    history.append(f"{rung.name}: {type(error).__name__}")
                    # The failed attempt's bytes crossed the wire for
                    # nothing — minus whatever a checkpointed resume will
                    # salvage; charge the rest (and the backoff) to
                    # recovery.
                    wasted_bytes, wasted_seconds = _waste_after(
                        channel, journal.head() if journal else None
                    )
                    retransmitted_bytes += wasted_bytes
                    recovery_seconds += (
                        self.retry.backoff_seconds(retries) + wasted_seconds
                    )
                    continue
                if resume_state is not None:
                    rounds_salvaged += resume_state.round_index
                if journal is not None:
                    checkpoint_bytes += journal.bytes_written
                    journal.commit()
                outcome.retries += retries
                outcome.retransmitted_bytes += retransmitted_bytes
                outcome.recovery_seconds += recovery_seconds
                outcome.rounds_salvaged += rounds_salvaged
                outcome.resume_handshake_bits += resume_handshake_bits
                outcome.checkpoint_bytes_written += checkpoint_bytes
                if rung is not self.method:
                    outcome.fallback_method = rung.name
                return outcome
            if journal is not None:
                # Abandoning this rung abandons its checkpoints: traffic
                # previously excluded from waste as "salvageable" is now
                # definitively lost — settle the bill before descending.
                checkpoint_bytes += journal.bytes_written
                head = journal.head()
                if head is not None:
                    link = self.link or LinkModel()
                    retransmitted_bytes += head.total_bytes
                    recovery_seconds += link.transfer_time_directional(
                        head.bytes_in_direction(Direction.CLIENT_TO_SERVER),
                        head.bytes_in_direction(Direction.SERVER_TO_CLIENT),
                        head.roundtrips,
                    )

        raise SyncFailedError(
            f"all ladder rungs failed after {retries} attempts "
            f"({' -> '.join(history)})",
            attempts=retries,
            history=tuple(history),
        )
