"""A supervisor that drives any sync method to completion on faulty links.

One file, one :class:`SyncSupervisor.sync_file` call.  The supervisor
runs the primary method over a fresh channel; when the attempt dies of a
recoverable error — a corrupted or truncated frame, a dropped message, a
mid-protocol disconnect, a failed integrity check — it retries under the
:class:`~repro.resilience.retry.RetryPolicy`, then walks down a fallback
ladder of progressively coarser (and progressively harder to kill)
methods: multiround rsync → plain rsync → compressed full transfer.
Multi-round reconciliation only pays off if a failed round degrades
gracefully instead of restarting the world; the ladder is that
degradation made explicit, and the returned
:class:`~repro.syncmethod.MethodOutcome` records which rung succeeded,
how many attempts were burnt, and what the recovery cost on the wire and
in (estimated) wall-clock.
"""

from __future__ import annotations

from repro.exceptions import (
    ChannelClosedError,
    DeltaFormatError,
    FrameCorruptionError,
    IntegrityError,
    ProtocolError,
    SyncFailedError,
)
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.syncmethod import MethodOutcome, SyncMethod

#: Errors a retry can plausibly cure.  Everything else (ConfigError,
#: programming errors) propagates immediately.
RECOVERABLE_ERRORS = (
    FrameCorruptionError,
    ProtocolError,
    ChannelClosedError,  # includes ChannelEmptyError (dropped messages)
    IntegrityError,
    DeltaFormatError,
)


def default_ladder(primary: SyncMethod) -> list[SyncMethod]:
    """The degradation ladder below ``primary``: multiround → rsync → full.

    Rungs sharing the primary's name are dropped, so e.g. supervising
    plain rsync degrades straight to the full transfer.
    """
    from repro.bench.methods import (
        FullTransferMethod,
        MultiroundRsyncMethod,
        RsyncMethod,
    )

    ladder: list[SyncMethod] = [
        MultiroundRsyncMethod(),
        RsyncMethod(),
        FullTransferMethod(),
    ]
    return [rung for rung in ladder if rung.name != primary.name]


class SyncSupervisor(SyncMethod):
    """Wrap a :class:`SyncMethod` with retry, backoff and fallback.

    Parameters
    ----------
    method:
        The primary per-file method.
    retry:
        Attempt budget and backoff schedule *per ladder rung*.
    ladder:
        Fallback methods tried in order once the primary's attempts are
        exhausted; defaults to :func:`default_ladder`.
    fault_plan:
        Optional :class:`~repro.net.faults.FaultPlan`; when given, every
        attempt runs over a fresh fault-injected channel advancing the
        shared plan (so retries see fresh randomness, not the same fault
        replayed).  Without a plan, attempts run over clean channels and
        the supervisor is pure pass-through on the happy path.
    link:
        Link model used for the channels and for pricing recovery time.
    """

    def __init__(
        self,
        method: SyncMethod,
        retry: RetryPolicy | None = None,
        ladder: list[SyncMethod] | None = None,
        fault_plan: FaultPlan | None = None,
        link: LinkModel | None = None,
    ) -> None:
        self.method = method
        self.retry = retry or RetryPolicy()
        self.ladder = default_ladder(method) if ladder is None else ladder
        self.fault_plan = fault_plan
        self.link = link
        self.name = f"supervised({method.name})"

    # ------------------------------------------------------------------
    def _make_channel(self) -> SimulatedChannel:
        if self.fault_plan is not None:
            return self.fault_plan.channel(self.link)
        return SimulatedChannel(self.link)

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair, surviving recoverable failures."""
        retries = 0
        retransmitted_bytes = 0
        recovery_seconds = 0.0
        history: list[str] = []

        for rung in [self.method, *self.ladder]:
            for _attempt in range(self.retry.max_attempts):
                channel = self._make_channel()
                try:
                    outcome = rung.sync_file_over(old, new, channel)
                    if not outcome.correct:
                        raise IntegrityError(
                            f"{rung.name} reconstructed the wrong bytes"
                        )
                except RECOVERABLE_ERRORS as error:
                    retries += 1
                    history.append(f"{rung.name}: {type(error).__name__}")
                    # The failed attempt's bytes crossed the wire for
                    # nothing; charge them (and the backoff) to recovery.
                    retransmitted_bytes += (
                        channel.stats.total_bytes
                        + channel.stats.retransmitted_bytes
                    )
                    recovery_seconds += (
                        self.retry.backoff_seconds(retries)
                        + channel.estimated_transfer_time()
                    )
                    continue
                outcome.retries += retries
                outcome.retransmitted_bytes += retransmitted_bytes
                outcome.recovery_seconds += recovery_seconds
                if rung is not self.method:
                    outcome.fallback_method = rung.name
                return outcome

        raise SyncFailedError(
            f"all ladder rungs failed after {retries} attempts "
            f"({' -> '.join(history)})",
            attempts=retries,
            history=tuple(history),
        )
