"""A supervisor that drives any sync method to completion on faulty links.

One file, one :class:`SyncSupervisor.sync_file` call.  The supervisor
runs the primary method over a fresh channel; when the attempt dies of a
recoverable error — a corrupted or truncated frame, a dropped message, a
mid-protocol disconnect, a failed integrity check — it retries under the
:class:`~repro.resilience.retry.RetryPolicy`, then walks down a fallback
ladder of progressively coarser (and progressively harder to kill)
methods: multiround rsync → plain rsync → compressed full transfer.
Multi-round reconciliation only pays off if a failed round degrades
gracefully instead of restarting the world; the ladder is that
degradation made explicit, and the returned
:class:`~repro.syncmethod.MethodOutcome` records which rung succeeded,
how many attempts were burnt, and what the recovery cost on the wire and
in (estimated) wall-clock.

With a :class:`~repro.resilience.checkpoint.CheckpointStore` the
supervisor additionally makes retries *cheap*: checkpoint-capable rungs
journal their state at every round boundary, and each retry first runs
the resume handshake (:func:`~repro.resilience.recovery.attempt_resume`)
to continue from the last completed round instead of restarting.  Only
the traffic past the newest durable checkpoint is then charged as
retransmission — the salvaged rounds were *not* wasted.

The adaptive layer (DESIGN §14) is strictly opt-in and leaves every
default-configured run byte-identical:

* an :class:`~repro.resilience.adaptive.AdaptiveRetryPolicy` feeds
  per-attempt evidence into its link-health monitor, widens/tightens the
  backoff by AIMD, and unlocks **failure-signature routing**: corruption
  and drops retry the same rung, a disconnect goes straight to a
  checkpoint-resume attempt with zero backoff, and decode/stall/protocol
  failures — which indict the rung, not the link — descend the ladder
  immediately instead of burning the remaining attempts;
* a :class:`~repro.resilience.adaptive.BreakerBoard` gives each file a
  circuit breaker that fails fast
  (:class:`~repro.exceptions.CircuitOpenError`) once the file has proven
  itself poisonous;
* ``deadline_s`` / a shared :class:`~repro.resilience.adaptive.DeadlineBudget`
  bound the simulated seconds a file / the whole run may spend; on
  breach the supervisor salvages the checkpointed rounds and raises
  :class:`~repro.exceptions.DeadlineExceededError` whose ``partial``
  outcome carries the full accounting for graceful degradation upstream.
"""

from __future__ import annotations

from repro.exceptions import (
    ChannelClosedError,
    ChecksumMismatchError,
    CircuitOpenError,
    DeadlineExceededError,
    DeltaFormatError,
    FrameCorruptionError,
    IntegrityError,
    ProtocolError,
    SyncFailedError,
)
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.faults import FaultPlan
from repro.net.metrics import Direction
from repro.resilience.adaptive import (
    AdaptiveRetryPolicy,
    BreakerBoard,
    DeadlineBudget,
)
from repro.resilience.checkpoint import CheckpointStore, RoundCheckpoint
from repro.resilience.health import (
    AttemptEvidence,
    FailureSignature,
    TRANSIENT_SIGNATURES,
    classify_failure,
    fault_delta,
)
from repro.resilience.retry import RetryPolicy
from repro.syncmethod import MethodOutcome, SyncMethod

#: Errors a retry can plausibly cure.  Everything else (ConfigError,
#: programming errors) propagates immediately.
RECOVERABLE_ERRORS = (
    FrameCorruptionError,
    ProtocolError,
    ChannelClosedError,  # includes ChannelEmptyError (dropped messages)
    IntegrityError,
    DeltaFormatError,
)


def default_ladder(primary: SyncMethod) -> list[SyncMethod]:
    """The degradation ladder below ``primary``: multiround → rsync → full.

    Rungs sharing the primary's name are dropped, so e.g. supervising
    plain rsync degrades straight to the full transfer.
    """
    from repro.bench.methods import (
        FullTransferMethod,
        MultiroundRsyncMethod,
        RsyncMethod,
    )

    ladder: list[SyncMethod] = [
        MultiroundRsyncMethod(),
        RsyncMethod(),
        FullTransferMethod(),
    ]
    return [rung for rung in ladder if rung.name != primary.name]


def _waste_after(
    channel: SimulatedChannel, head: "RoundCheckpoint | None"
) -> tuple[int, float]:
    """Wire bytes and wall-clock a failed attempt definitively burnt.

    Without a checkpoint head, everything the channel carried is waste
    (the PR-2 accounting, unchanged).  With one, traffic up to the head
    will be salvaged by the next attempt's resume — only the tail past
    the last durable boundary, plus link-level retransmissions, is lost.
    """
    stats = channel.stats
    if head is None:
        return (
            stats.total_bytes + stats.retransmitted_bytes,
            channel.estimated_transfer_time(),
        )
    c2s = max(
        0,
        stats.client_to_server_bytes
        - head.bytes_in_direction(Direction.CLIENT_TO_SERVER),
    )
    s2c = max(
        0,
        stats.server_to_client_bytes
        - head.bytes_in_direction(Direction.SERVER_TO_CLIENT),
    )
    roundtrips = max(0, stats.roundtrips - head.roundtrips)
    return (
        c2s + s2c + stats.retransmitted_bytes,
        channel.link.transfer_time_directional(c2s, s2c, roundtrips),
    )


class SyncSupervisor(SyncMethod):
    """Wrap a :class:`SyncMethod` with retry, backoff and fallback.

    Parameters
    ----------
    method:
        The primary per-file method.
    retry:
        Attempt budget and backoff schedule *per ladder rung* — a static
        :class:`RetryPolicy` or an
        :class:`~repro.resilience.adaptive.AdaptiveRetryPolicy` (which
        additionally enables failure-signature ladder routing and the
        link-health monitor).
    ladder:
        Fallback methods tried in order once the primary's attempts are
        exhausted; defaults to :func:`default_ladder`.
    fault_plan:
        Optional :class:`~repro.net.faults.FaultPlan`; when given, every
        attempt runs over a fresh fault-injected channel advancing the
        shared plan (so retries see fresh randomness, not the same fault
        replayed).  Without a plan, attempts run over clean channels and
        the supervisor is pure pass-through on the happy path.
    link:
        Link model used for the channels and for pricing recovery time.
    checkpoints:
        Optional :class:`~repro.resilience.checkpoint.CheckpointStore`.
        When given, checkpoint-capable rungs journal every completed
        round and each retry attempts the resume handshake first,
        continuing from the last durable boundary.  ``None`` (default)
        reproduces PR-2 behaviour byte for byte.
    breakers:
        Optional :class:`~repro.resilience.adaptive.BreakerBoard` giving
        every file a circuit breaker; a refused attempt raises
        :class:`~repro.exceptions.CircuitOpenError` with partial
        accounting attached.
    deadline_s:
        Optional per-file budget of simulated seconds (backoff + wasted
        transfer + successful transfer).  Breach raises
        :class:`~repro.exceptions.DeadlineExceededError` *between*
        attempts, leaving checkpoints intact for a later resume.
    budget:
        Optional shared :class:`~repro.resilience.adaptive.DeadlineBudget`
        charged by every supervised file — the run-level deadline.
    """

    def __init__(
        self,
        method: SyncMethod,
        retry: "RetryPolicy | AdaptiveRetryPolicy | None" = None,
        ladder: list[SyncMethod] | None = None,
        fault_plan: FaultPlan | None = None,
        link: LinkModel | None = None,
        checkpoints: CheckpointStore | None = None,
        breakers: BreakerBoard | None = None,
        deadline_s: float | None = None,
        budget: DeadlineBudget | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.method = method
        self.retry = retry or RetryPolicy()
        self.ladder = default_ladder(method) if ladder is None else ladder
        self.fault_plan = fault_plan
        self.link = link
        self.checkpoints = checkpoints
        self.breakers = breakers
        self.deadline_s = deadline_s
        self.budget = budget
        self.name = f"supervised({method.name})"

    # ------------------------------------------------------------------
    def _make_channel(self) -> SimulatedChannel:
        if self.fault_plan is not None:
            return self.fault_plan.channel(self.link)
        return SimulatedChannel(self.link)

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair, surviving recoverable failures."""
        return self.sync_named_file(None, old, new)

    def sync_named_file(
        self, name: str | None, old: bytes, new: bytes
    ) -> MethodOutcome:
        """Synchronise one named file pair, surviving recoverable failures.

        ``name`` keys the per-file checkpoint journal (when a store is
        configured) and the circuit breaker (when a board is configured);
        ``None`` is valid and shares the anonymous journal/breaker.
        """
        from repro.resilience.recovery import attempt_resume

        adaptive = isinstance(self.retry, AdaptiveRetryPolicy)
        monitor = self.retry.monitor if adaptive else None
        breaker = (
            self.breakers.breaker(name) if self.breakers is not None else None
        )
        breaker_opens_before = breaker.opens if breaker is not None else 0

        retries = 0
        retransmitted_bytes = 0
        recovery_seconds = 0.0
        adaptive_backoff_s = 0.0
        rounds_salvaged = 0
        resume_handshake_bits = 0
        checkpoint_bytes = 0
        spent_s = 0.0
        history: list[str] = []

        def charge(seconds: float) -> None:
            nonlocal spent_s
            spent_s += seconds
            if self.breakers is not None:
                self.breakers.advance(seconds)
            if self.budget is not None:
                self.budget.charge(seconds)

        def partial_outcome(journal, deadline_salvages: int = 0):
            """Accounting of the doomed attempts, for typed failures."""
            return MethodOutcome(
                total_bytes=0,
                correct=False,
                retries=retries,
                retransmitted_bytes=retransmitted_bytes,
                recovery_seconds=recovery_seconds,
                rounds_salvaged=rounds_salvaged,
                resume_handshake_bits=resume_handshake_bits,
                checkpoint_bytes_written=checkpoint_bytes
                + (journal.bytes_written if journal is not None else 0),
                health_score=monitor.score if monitor is not None else 1.0,
                breaker_opens=(
                    breaker.opens - breaker_opens_before
                    if breaker is not None
                    else 0
                ),
                deadline_salvages=deadline_salvages,
                adaptive_backoff_s=adaptive_backoff_s,
            )

        for rung in [self.method, *self.ladder]:
            journal = None
            identity = None
            if self.checkpoints is not None and rung.supports_checkpoint:
                journal = self.checkpoints.journal(name)
                identity = rung.checkpoint_identity(old, new)
                journal.open(identity, resume=self.checkpoints.resume)
            for _attempt in range(self.retry.max_attempts):
                # --- pre-attempt gates (no-ops unless configured) -----
                if breaker is not None and not breaker.allow(
                    self.breakers.clock
                ):
                    raise CircuitOpenError(
                        f"circuit open for {name or '<anonymous>'} after "
                        f"{breaker.consecutive_failures} consecutive "
                        f"failures ({breaker.opens} opens)",
                        attempts=retries,
                        history=tuple(history),
                        partial=partial_outcome(journal),
                    )
                over_deadline = (
                    self.deadline_s is not None and spent_s >= self.deadline_s
                )
                over_budget = self.budget is not None and self.budget.exhausted
                if over_deadline or over_budget:
                    head = journal.head() if journal is not None else None
                    salvages = head.round_index if head is not None else 0
                    scope = "file deadline" if over_deadline else "run budget"
                    raise DeadlineExceededError(
                        f"{scope} exhausted after {spent_s:.1f}s simulated "
                        f"({retries} attempts burnt, {salvages} checkpointed "
                        f"rounds salvaged)",
                        attempts=retries,
                        history=tuple(history),
                        partial=partial_outcome(
                            journal, deadline_salvages=salvages
                        ),
                    )

                fault_mark = (
                    len(self.fault_plan.fault_log)
                    if self.fault_plan is not None
                    else 0
                )
                channel = self._make_channel()
                resume_state: RoundCheckpoint | None = None
                try:
                    if journal is not None:
                        resume_state, handshake_bits = attempt_resume(
                            journal, identity, channel
                        )
                        resume_handshake_bits += handshake_bits
                        outcome = rung.sync_file_resumable(
                            old,
                            new,
                            channel,
                            checkpointer=journal,
                            resume_from=resume_state,
                        )
                    else:
                        outcome = rung.sync_file_over(old, new, channel)
                    if not outcome.correct:
                        # Wrong bytes that slipped past the protocol's own
                        # fingerprint+repair machinery: a checksum mismatch
                        # worth an immediate same-rung retry, not a rung
                        # descent.
                        raise ChecksumMismatchError(
                            f"{rung.name} reconstructed the wrong bytes"
                        )
                except RECOVERABLE_ERRORS as error:
                    retries += 1
                    history.append(f"{rung.name}: {type(error).__name__}")
                    # The failed attempt's bytes crossed the wire for
                    # nothing — minus whatever a checkpointed resume will
                    # salvage; charge the rest (and the backoff) to
                    # recovery.
                    head = journal.head() if journal is not None else None
                    wasted_bytes, wasted_seconds = _waste_after(channel, head)
                    retransmitted_bytes += wasted_bytes
                    signature = None
                    if adaptive:
                        signature = classify_failure(error)
                        faults = fault_delta(self.fault_plan, fault_mark)
                        monitor.record(
                            AttemptEvidence(
                                ok=False,
                                signature=signature,
                                corruption_events=faults.corruption,
                                drop_events=faults.drops,
                                disconnect_events=faults.disconnects,
                                retransmitted_bits=wasted_bytes * 8,
                                payload_bits=channel.stats.total_bytes * 8,
                                rounds_completed=(
                                    head.round_index if head is not None else 0
                                ),
                                rounds_salvaged=(
                                    head.round_index if head is not None else 0
                                ),
                            )
                        )
                        self.retry.note_failure(signature)
                        # A disconnect with a durable checkpoint resumes
                        # immediately: the link already came back (the
                        # plan disarms one-shot disconnects) and every
                        # second of backoff only re-exposes the window.
                        # A checksum mismatch is repaired now for the same
                        # reason: the collision is content luck, not link
                        # weather — waiting cannot improve the odds.
                        if (
                            signature == FailureSignature.DISCONNECT
                            and head is not None
                        ) or signature == FailureSignature.COLLISION:
                            backoff = 0.0
                        else:
                            backoff = self.retry.backoff_seconds(retries)
                        adaptive_backoff_s += backoff
                    else:
                        backoff = self.retry.backoff_seconds(retries)
                    recovery_seconds += backoff + wasted_seconds
                    charge(backoff + wasted_seconds)
                    if breaker is not None:
                        breaker.record_failure(self.breakers.clock)
                    if (
                        adaptive
                        and signature not in TRANSIENT_SIGNATURES
                    ):
                        # Decode/stall/protocol failures indict the rung,
                        # not the link: burning the remaining attempts on
                        # it cannot help.  Descend the ladder now.
                        break
                    continue
                # --- success ------------------------------------------
                charge(channel.estimated_transfer_time())
                if breaker is not None:
                    breaker.record_success(self.breakers.clock)
                if resume_state is not None:
                    rounds_salvaged += resume_state.round_index
                if journal is not None:
                    checkpoint_bytes += journal.bytes_written
                    journal.commit()
                if adaptive:
                    faults = fault_delta(self.fault_plan, fault_mark)
                    monitor.record(
                        AttemptEvidence(
                            ok=True,
                            corruption_events=faults.corruption,
                            drop_events=faults.drops,
                            disconnect_events=faults.disconnects,
                            payload_bits=channel.stats.total_bytes * 8,
                            rounds_salvaged=(
                                resume_state.round_index
                                if resume_state is not None
                                else 0
                            ),
                        )
                    )
                    self.retry.note_success()
                    outcome.health_score = monitor.score
                outcome.retries += retries
                outcome.retransmitted_bytes += retransmitted_bytes
                outcome.recovery_seconds += recovery_seconds
                outcome.rounds_salvaged += rounds_salvaged
                outcome.resume_handshake_bits += resume_handshake_bits
                outcome.checkpoint_bytes_written += checkpoint_bytes
                outcome.adaptive_backoff_s += adaptive_backoff_s
                if breaker is not None:
                    outcome.breaker_opens += (
                        breaker.opens - breaker_opens_before
                    )
                if rung is not self.method:
                    outcome.fallback_method = rung.name
                return outcome
            if journal is not None:
                # Abandoning this rung abandons its checkpoints: traffic
                # previously excluded from waste as "salvageable" is now
                # definitively lost — settle the bill before descending.
                checkpoint_bytes += journal.bytes_written
                head = journal.head()
                if head is not None:
                    link = self.link or LinkModel()
                    retransmitted_bytes += head.total_bytes
                    abandoned_seconds = link.transfer_time_directional(
                        head.bytes_in_direction(Direction.CLIENT_TO_SERVER),
                        head.bytes_in_direction(Direction.SERVER_TO_CLIENT),
                        head.roundtrips,
                    )
                    recovery_seconds += abandoned_seconds
                    charge(abandoned_seconds)

        raise SyncFailedError(
            f"all ladder rungs failed after {retries} attempts "
            f"({' -> '.join(history)})",
            attempts=retries,
            history=tuple(history),
            partial=partial_outcome(None),
        )
