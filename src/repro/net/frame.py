"""Checksummed message framing: length + CRC32 per frame.

The simulated channel normally hands payloads to the peer verbatim, which
models a lossless ordered transport.  Under fault injection that is no
longer a safe assumption, so the faulty channel wraps every payload in a
frame that makes corruption *detectable*:

    +----------------+----------------+-----------------+
    | length (4 B BE) | crc32 (4 B BE) | payload (length) |
    +----------------+----------------+-----------------+

Any bit-flip — in the header or the payload — or any truncation fails
either the length check or the CRC and raises
:class:`~repro.exceptions.FrameCorruptionError` at the receiver, turning
silent corruption into a recoverable protocol event.

Framing bytes are deliberately *not* charged to
:class:`~repro.net.metrics.TransferStats`: the 8-byte overhead is a wash
across every compared method, and keeping the accounting identical to the
unframed channel means fault-injected benchmark rows stay directly
comparable to clean ones.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.exceptions import FrameCorruptionError
from repro.io.varint import decode_uvarint, encode_uvarint

_HEADER = struct.Struct(">II")

#: Bytes of framing overhead prepended to every payload.
FRAME_OVERHEAD = _HEADER.size


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC32 header."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(frame: bytes) -> bytes:
    """Unwrap one frame, raising :class:`FrameCorruptionError` if mangled."""
    if len(frame) < FRAME_OVERHEAD:
        raise FrameCorruptionError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{FRAME_OVERHEAD}-byte header"
        )
    length, crc = _HEADER.unpack_from(frame)
    payload = frame[FRAME_OVERHEAD:]
    if length != len(payload):
        raise FrameCorruptionError(
            f"frame announces {length} payload bytes but carries "
            f"{len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise FrameCorruptionError("frame payload fails its CRC32 check")
    return payload


# ----------------------------------------------------------------------
# Multiplexed sub-frames (the pipelined collection scheduler's wire unit)
# ----------------------------------------------------------------------
#
# A pipelined collection drives many per-file sessions over ONE shared
# channel, so each coalesced batch must say which file and which protocol
# round every payload belongs to.  A batch is::
#
#     count (uvarint) | subframe | subframe | ...
#
# and each sub-frame::
#
#     stream_id (uvarint) | round (uvarint) | seq (uvarint)
#     | bit_length (uvarint) | payload ((bit_length + 7) // 8 bytes)
#
# ``stream_id`` keys the file's lane, ``round`` the protocol round the
# message belongs to, and ``seq`` the per-lane message serial — enough
# for a receiver to demultiplex and re-order deterministically.  The
# payload's byte length is derived from ``bit_length`` (the channel
# enforces ``0 <= 8*len - bits < 8``), so no separate length field is
# spent.  Like the CRC framing above, mux header bytes are *overhead*
# around untouched protocol payloads: the scheduler accounts them
# separately (``mux_overhead_bytes``) instead of charging them to any
# per-file phase bucket.


@dataclass(frozen=True)
class MuxSubframe:
    """One demultiplexed message of a coalesced batch."""

    stream_id: int
    round_index: int
    seq: int
    bit_length: int
    payload: bytes


def encode_mux_batch(subframes: list[MuxSubframe]) -> bytes:
    """Pack sub-frames into one batch payload."""
    out = bytearray()
    out += encode_uvarint(len(subframes))
    for sub in subframes:
        if (len(sub.payload) * 8 - sub.bit_length) not in range(8):
            raise ValueError(
                f"bit_length={sub.bit_length} inconsistent with a "
                f"{len(sub.payload)}-byte payload"
            )
        out += encode_uvarint(sub.stream_id)
        out += encode_uvarint(sub.round_index)
        out += encode_uvarint(sub.seq)
        out += encode_uvarint(sub.bit_length)
        out += sub.payload
    return bytes(out)


def decode_mux_batch(batch: bytes) -> list[MuxSubframe]:
    """Inverse of :func:`encode_mux_batch`.

    Raises :class:`FrameCorruptionError` on truncation or trailing
    garbage — a mangled batch must never demultiplex silently.
    """
    try:
        count, offset = decode_uvarint(batch, 0)
        subframes: list[MuxSubframe] = []
        for _ in range(count):
            stream_id, offset = decode_uvarint(batch, offset)
            round_index, offset = decode_uvarint(batch, offset)
            seq, offset = decode_uvarint(batch, offset)
            bit_length, offset = decode_uvarint(batch, offset)
            length = (bit_length + 7) // 8
            if offset + length > len(batch):
                raise FrameCorruptionError(
                    f"mux sub-frame announces {length} payload bytes but "
                    f"only {len(batch) - offset} remain"
                )
            subframes.append(
                MuxSubframe(
                    stream_id,
                    round_index,
                    seq,
                    bit_length,
                    batch[offset : offset + length],
                )
            )
            offset += length
    except (IndexError, ValueError) as error:
        raise FrameCorruptionError(f"undecodable mux batch: {error}") from error
    if offset != len(batch):
        raise FrameCorruptionError(
            f"mux batch carries {len(batch) - offset} trailing bytes"
        )
    return subframes


def mux_overhead_bytes(batch: bytes, subframes: list[MuxSubframe]) -> int:
    """Header bytes the batch spends beyond its protocol payloads."""
    return len(batch) - sum(len(sub.payload) for sub in subframes)
