"""Checksummed message framing: length + CRC32 per frame.

The simulated channel normally hands payloads to the peer verbatim, which
models a lossless ordered transport.  Under fault injection that is no
longer a safe assumption, so the faulty channel wraps every payload in a
frame that makes corruption *detectable*:

    +----------------+----------------+-----------------+
    | length (4 B BE) | crc32 (4 B BE) | payload (length) |
    +----------------+----------------+-----------------+

Any bit-flip — in the header or the payload — or any truncation fails
either the length check or the CRC and raises
:class:`~repro.exceptions.FrameCorruptionError` at the receiver, turning
silent corruption into a recoverable protocol event.

Framing bytes are deliberately *not* charged to
:class:`~repro.net.metrics.TransferStats`: the 8-byte overhead is a wash
across every compared method, and keeping the accounting identical to the
unframed channel means fault-injected benchmark rows stay directly
comparable to clean ones.
"""

from __future__ import annotations

import struct
import zlib

from repro.exceptions import FrameCorruptionError

_HEADER = struct.Struct(">II")

#: Bytes of framing overhead prepended to every payload.
FRAME_OVERHEAD = _HEADER.size


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC32 header."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(frame: bytes) -> bytes:
    """Unwrap one frame, raising :class:`FrameCorruptionError` if mangled."""
    if len(frame) < FRAME_OVERHEAD:
        raise FrameCorruptionError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{FRAME_OVERHEAD}-byte header"
        )
    length, crc = _HEADER.unpack_from(frame)
    payload = frame[FRAME_OVERHEAD:]
    if length != len(payload):
        raise FrameCorruptionError(
            f"frame announces {length} payload bytes but carries "
            f"{len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise FrameCorruptionError("frame payload fails its CRC32 check")
    return payload
