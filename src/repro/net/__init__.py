"""Simulated network substrate.

The paper's evaluation measures *bytes on the wire*, split by direction
(client→server vs server→client) and by phase (map construction vs final
delta).  :class:`~repro.net.channel.SimulatedChannel` performs exact
accounting of framed messages, counts roundtrips, and can estimate
wall-clock transfer time for a configured latency/bandwidth — the honest
stand-in for the authors' slow-network testbed.
"""

from repro.net.channel import Direction, LinkModel, SimulatedChannel
from repro.net.metrics import TransferStats

__all__ = ["Direction", "LinkModel", "SimulatedChannel", "TransferStats"]
