"""Simulated network substrate.

The paper's evaluation measures *bytes on the wire*, split by direction
(client→server vs server→client) and by phase (map construction vs final
delta).  :class:`~repro.net.channel.SimulatedChannel` performs exact
accounting of framed messages, counts roundtrips, and can estimate
wall-clock transfer time for a configured latency/bandwidth — the honest
stand-in for the authors' slow-network testbed.

For links that are slow *and* flaky, :class:`~repro.net.faults.FaultyChannel`
layers CRC32 framing (:mod:`repro.net.frame`) and a seeded
:class:`~repro.net.faults.FaultPlan` of corruption, truncation, drops and
disconnects on top of the same accounting.
"""

from repro.net.channel import Direction, LinkModel, SimulatedChannel
from repro.net.chaos import (
    CHAOS_SHAPES,
    ChaosProfile,
    ScheduledFaultPlan,
    chaos_plan,
)
from repro.net.faults import FaultEvent, FaultKind, FaultPlan, FaultyChannel
from repro.net.frame import (
    FRAME_OVERHEAD,
    MuxSubframe,
    decode_frame,
    decode_mux_batch,
    encode_frame,
    encode_mux_batch,
    mux_overhead_bytes,
)
from repro.net.metrics import TransferStats

__all__ = [
    "CHAOS_SHAPES",
    "ChaosProfile",
    "Direction",
    "FRAME_OVERHEAD",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultyChannel",
    "LinkModel",
    "MuxSubframe",
    "ScheduledFaultPlan",
    "SimulatedChannel",
    "TransferStats",
    "chaos_plan",
    "decode_frame",
    "decode_mux_batch",
    "encode_frame",
    "encode_mux_batch",
    "mux_overhead_bytes",
]
