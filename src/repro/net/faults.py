"""Deterministic fault injection for the simulated channel.

The paper's protocols assume a lossless ordered transport; a production
replica-maintenance system over flaky links cannot.  This module makes
the failure modes of such links *reproducible*:

* :class:`FaultPlan` — a seeded schedule deciding, per transmitted
  message, whether to corrupt it (bit-flip), truncate it, drop it, or
  tear the connection down, optionally restricted to specific protocol
  phases (``"map"``, ``"delta"``, ...).
* :class:`FaultyChannel` — a :class:`~repro.net.channel.SimulatedChannel`
  that frames every payload with a length + CRC32 header
  (:mod:`repro.net.frame`) and executes the plan.  Corruption and
  truncation surface as :class:`~repro.exceptions.FrameCorruptionError`
  at the receiver; a dropped message leaves the receiver staring at an
  empty queue (:class:`~repro.exceptions.ChannelEmptyError`); a
  disconnect closes the channel mid-send
  (:class:`~repro.exceptions.ChannelClosedError`).

Every decision comes from one seeded RNG consumed in send order, so a
given plan replays the exact same fault sequence — including across the
retry attempts of a supervisor sharing the plan, which therefore see
*fresh* randomness rather than deterministically re-hitting the same
fault forever.

Byte accounting: a mangled or dropped message still crossed (part of)
the wire, so its payload bits are recorded exactly as on a clean
channel.  What recovery *additionally* costs is charged separately — see
:meth:`repro.net.metrics.TransferStats.record_retransmission`.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import NamedTuple

from repro.exceptions import ChannelClosedError
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.frame import decode_frame, encode_frame
from repro.net.metrics import Direction


class FaultKind(Enum):
    """What happens to one transmitted message."""

    CORRUPT = "corrupt"
    TRUNCATE = "truncate"
    DROP = "drop"
    DISCONNECT = "disconnect"
    #: Semantic mutation of a delta payload that survives CRC framing:
    #: the wire-level weak-hash collision (:class:`CollisionFaultPlan`).
    COLLIDE = "collide"


class FaultEvent(NamedTuple):
    """One injected fault, with enough context to correlate failure point
    with recovery cost: which send it hit, in which protocol phase, and —
    when the protocol marks rounds on its channel — in which round."""

    kind: FaultKind
    phase: str
    send_index: int
    round_index: int


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of channel faults.

    Rates are per-message probabilities, drawn once per send in transmit
    order; their sum must not exceed 1.  ``phases`` (``None`` = all)
    restricts probabilistic faults to the named protocol phases, which is
    how tests target "corruption in the map phase" or "a drop in the
    delta phase".  ``disconnect_after_sends`` fires exactly once, on the
    Nth send overall — modelling a mid-protocol link loss — and is
    disarmed afterwards so retries can complete.  ``max_faults`` caps the
    number of probabilistic faults injected in total.
    """

    seed: int = 0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    drop_rate: float = 0.0
    disconnect_after_sends: int | None = None
    phases: frozenset[str] | None = None
    max_faults: int | None = None

    sends_seen: int = field(default=0, init=False, repr=False)
    injected: Counter = field(default_factory=Counter, init=False, repr=False)
    #: Every injected fault in transmit order, with phase/round context.
    fault_log: "list[FaultEvent]" = field(
        default_factory=list, init=False, repr=False
    )
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for label in ("corrupt_rate", "truncate_rate", "drop_rate"):
            rate = getattr(self, label)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if self.corrupt_rate + self.truncate_rate + self.drop_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if (self.disconnect_after_sends is not None
                and self.disconnect_after_sends < 1):
            raise ValueError("disconnect_after_sends must be >= 1")
        if self.phases is not None:
            self.phases = frozenset(self.phases)
        self._rng = random.Random(self.seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """An all-phase mix at a single headline rate.

        Splits ``rate`` as half corruption, a quarter truncation and a
        quarter drops — the blend the CLI's ``--fault-rate`` uses.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(
            seed=seed,
            corrupt_rate=rate / 2,
            truncate_rate=rate / 4,
            drop_rate=rate / 4,
            **overrides,
        )

    @property
    def faults_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def disconnect_rounds(self) -> list[int]:
        """Protocol round index at which each disconnect fired.

        Round 0 means "before the first round" (handshake traffic, or a
        protocol that does not mark rounds on its channel).  Fault-matrix
        rows use this to correlate the failure point with recovery cost.
        """
        return [
            event.round_index
            for event in self.fault_log
            if event.kind is FaultKind.DISCONNECT
        ]

    def next_fault(self, phase: str, round_index: int = 0) -> FaultKind | None:
        """Decide the fate of the next message sent under this plan."""
        self.sends_seen += 1
        if self.sends_seen == self.disconnect_after_sends:
            self._record(FaultKind.DISCONNECT, phase, round_index)
            return FaultKind.DISCONNECT
        if self.phases is not None and phase not in self.phases:
            return None
        if (self.max_faults is not None
                and self.faults_injected >= self.max_faults):
            return None
        draw = self._rng.random()
        if draw < self.corrupt_rate:
            kind = FaultKind.CORRUPT
        elif draw < self.corrupt_rate + self.truncate_rate:
            kind = FaultKind.TRUNCATE
        elif draw < self.corrupt_rate + self.truncate_rate + self.drop_rate:
            kind = FaultKind.DROP
        else:
            return None
        self._record(kind, phase, round_index)
        return kind

    def _record(self, kind: FaultKind, phase: str, round_index: int) -> None:
        self.injected[kind] += 1
        self.fault_log.append(
            FaultEvent(kind, phase, self.sends_seen, round_index)
        )

    def mangle(self, frame: bytes, kind: FaultKind) -> bytes:
        """Apply ``kind`` to one encoded frame."""
        if kind is FaultKind.CORRUPT:
            corrupted = bytearray(frame)
            bit = self._rng.randrange(8 * len(corrupted))
            corrupted[bit // 8] ^= 1 << (bit % 8)
            return bytes(corrupted)
        if kind is FaultKind.TRUNCATE:
            return frame[: self._rng.randrange(len(frame))]
        raise ValueError(f"{kind} does not mangle payloads")

    def collide(self, payload: bytes, phase: str, round_index: int = 0) -> bytes:
        """Semantically mutate a payload (collision plans override)."""
        raise ValueError(f"{type(self).__name__} does not inject collisions")

    def channel(self, link: LinkModel | None = None) -> "FaultyChannel":
        """A fresh channel driven by (and advancing) this plan."""
        return FaultyChannel(self, link)


class FaultyChannel(SimulatedChannel):
    """A simulated channel whose messages suffer a :class:`FaultPlan`.

    Payloads are CRC32-framed on send and verified on receive, so
    injected corruption is detected rather than silently delivered.
    Framing overhead is not charged to the stats — accounting stays
    byte-identical to a clean :class:`SimulatedChannel` carrying the
    same traffic, which keeps faulty benchmark rows comparable.
    """

    def __init__(self, plan: FaultPlan, link: LinkModel | None = None) -> None:
        super().__init__(link)
        self.plan = plan

    def send(
        self,
        direction: Direction,
        payload: bytes,
        phase: str,
        bits: int | None = None,
    ) -> None:
        if self._closed:
            raise ChannelClosedError("send on a closed channel")
        fault = self.plan.next_fault(phase, round_index=self.current_round)
        if fault is FaultKind.DISCONNECT:
            self.close()
            raise ChannelClosedError(
                f"link dropped during {phase!r} send "
                f"#{self.plan.sends_seen} (injected disconnect)"
            )
        if fault is FaultKind.COLLIDE:
            # Semantic mutation happens *before* framing: the mutated
            # payload carries a valid CRC and decodes cleanly, exactly
            # like a weak-hash collision the frame layer cannot see.
            payload = self.plan.collide(
                payload, phase, round_index=self.current_round
            )
        # Base-class send performs the exact accounting (bits, roundtrips)
        # and enqueues the raw payload; swap it for the (possibly mangled)
        # frame so the receiver can check integrity.
        super().send(direction, payload, phase, bits)
        frame = encode_frame(self._queues[direction].pop())
        if fault in (FaultKind.CORRUPT, FaultKind.TRUNCATE):
            frame = self.plan.mangle(frame, fault)
        if fault is not FaultKind.DROP:
            self._queues[direction].append(frame)

    def receive(self, direction: Direction) -> bytes:
        return decode_frame(super().receive(direction))


@dataclass
class CollisionFaultPlan(FaultPlan):
    """Force weak-hash-collision semantics onto delta traffic.

    Frame-level corruption is *detectable* — the CRC catches it.  A
    truncated-hash collision is not: the transmitted rolling/strong
    hashes are all genuine, the delta decodes cleanly, and only the
    whole-file fingerprint can reveal that a block's *content* is wrong.
    This plan reproduces exactly that: it rewrites a delta payload's
    decompressed token stream (a length-preserving literal byte flip, or
    retargeting a copy token to equally-sized wrong source bytes) and
    re-compresses, leaving every transmitted hash and the CRC framing
    intact.  Understands the rsync delta layout (16-byte fingerprint +
    zlib token stream) and the multiround layout (bare zlib token
    stream); unrecognised payloads pass through untouched and unrecorded.

    Deterministic like its parent: the first ``max_collisions`` sends in
    ``collide_phase`` (after ``skip_deltas`` passes) are hit, and every
    random choice inside the mutation comes from the plan's seeded RNG.
    The classic probabilistic fault rates still apply on top if set.
    """

    max_collisions: int = 1
    collide_phase: str = "delta"
    #: Delta-phase sends to let through before colliding — selects which
    #: file of a collection run takes the hit.
    skip_deltas: int = 0

    _deltas_seen: int = field(default=0, init=False, repr=False)

    def next_fault(self, phase: str, round_index: int = 0) -> FaultKind | None:
        fault = super().next_fault(phase, round_index)
        if fault is not None:
            return fault
        if phase != self.collide_phase:
            return None
        self._deltas_seen += 1
        if self._deltas_seen <= self.skip_deltas:
            return None
        if self.injected[FaultKind.COLLIDE] >= self.max_collisions:
            return None
        return FaultKind.COLLIDE

    def collide(self, payload: bytes, phase: str, round_index: int = 0) -> bytes:
        mutated = self._mutate_delta(payload)
        if mutated is None:
            return payload
        self._record(FaultKind.COLLIDE, phase, round_index)
        return mutated

    def _mutate_delta(self, payload: bytes) -> bytes | None:
        """Rewrite one delta payload; ``None`` when nothing safe to hit."""
        import zlib

        for prefix in (0, 16):  # multiround: bare stream; rsync: fp + stream
            if len(payload) <= prefix:
                continue
            try:
                raw = zlib.decompress(payload[prefix:])
            except zlib.error:
                continue
            mutated = self._mutate_tokens(raw, rsync_refs=(prefix == 16))
            if mutated is None:
                return None
            return payload[:prefix] + zlib.compress(mutated, 9)
        return None

    def _mutate_tokens(self, raw: bytes, rsync_refs: bool) -> bytes | None:
        """Flip one byte inside a literal run, preserving stream shape.

        Shared token grammar: ``0x00`` literal (varint length + bytes),
        ``0x01`` copy (rsync: varint block index; multiround: varint
        client_start + varint length).  When the stream carries no
        mutable literal, retarget a copy token instead: rsync copies get
        their block index nudged to an adjacent interior block,
        multiround copies their ``client_start`` shifted back one length
        — both substitute equally-sized wrong source bytes.
        """
        from repro.io.varint import decode_uvarint, encode_uvarint

        literal_spans: list[tuple[int, int]] = []  # (data_start, length)
        copy_tokens: list[tuple[int, int, tuple[int, ...]]] = []
        position = 0
        try:
            while position < len(raw):
                kind = raw[position]
                position += 1
                if kind == 0x00:
                    length, position = decode_uvarint(raw, position)
                    if position + length > len(raw):
                        return None
                    if length > 0:
                        literal_spans.append((position, length))
                    position += length
                elif kind == 0x01:
                    start = position
                    first, position = decode_uvarint(raw, position)
                    if rsync_refs:
                        copy_tokens.append((start, position, (first,)))
                    else:
                        second, position = decode_uvarint(raw, position)
                        copy_tokens.append((start, position, (first, second)))
                else:
                    return None
        except (IndexError, ValueError):
            return None

        if literal_spans:
            data_start, length = literal_spans[
                self._rng.randrange(len(literal_spans))
            ]
            at = data_start + self._rng.randrange(length)
            mutated = bytearray(raw)
            mutated[at] ^= self._rng.randrange(1, 256)
            return bytes(mutated)

        if rsync_refs:
            # Retarget a reference to a different interior block: indexes
            # below the maximum seen are full-size, so lengths hold.
            indexes = sorted({args[0] for _s, _e, args in copy_tokens})
            interior = indexes[:-1]
            if len(interior) < 2:
                return None
            victim_index = self._rng.choice(interior)
            replacement = self._rng.choice(
                [i for i in interior if i != victim_index]
            )
            for start, end, args in copy_tokens:
                if args[0] == victim_index:
                    return (
                        raw[:start]
                        + encode_uvarint(replacement)
                        + raw[end:]
                    )
            return None

        # Multiround: shift a copy's client_start back by its own length
        # (stays in range — the original window already fits).
        candidates = [
            (start, end, args)
            for start, end, args in copy_tokens
            if args[0] >= args[1] > 0
        ]
        if not candidates:
            return None
        start, end, (client_start, length) = candidates[
            self._rng.randrange(len(candidates))
        ]
        return (
            raw[:start]
            + encode_uvarint(client_start - length)
            + encode_uvarint(length)
            + raw[end:]
        )
