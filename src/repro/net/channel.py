"""A simulated bidirectional channel with exact byte accounting.

Both protocol endpoints live in the same process; the channel's job is to
make every transmitted message pass through a single point where its framed
size is recorded.  Roundtrips are counted as direction reversals, matching
how the paper counts protocol rounds (many files share each roundtrip, so
latency is amortised — the channel's :class:`LinkModel` lets benchmarks
report estimated wall-clock time for a given link anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ChannelClosedError, ChannelEmptyError
from repro.net.metrics import Direction, TransferStats


@dataclass(frozen=True)
class LinkModel:
    """A latency/bandwidth link description, optionally asymmetric.

    ``bandwidth_bps`` is the download (server→client) payload bandwidth
    in bits per second; ``uplink_bps`` the client→server bandwidth
    (``None`` means symmetric); ``latency_s`` is the one-way propagation
    delay in seconds.  Asymmetric cases — ADSL/cable clients with slow
    uplinks — are one of the paper's §7 extensions: they penalise
    client-chatty protocols like rsync's signature upload.
    """

    bandwidth_bps: float = 1_000_000.0  # ~1 Mbit/s: the paper's "slow link"
    latency_s: float = 0.05
    uplink_bps: float | None = None

    def __post_init__(self) -> None:
        # Fail at construction, not lazily inside transfer_time*: a link
        # built from bad config should be rejected before any protocol
        # charges wall-clock estimates against it.
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth_bps must be positive, got {self.bandwidth_bps}"
            )
        if self.uplink_bps is not None and self.uplink_bps <= 0:
            raise ValueError(
                f"uplink_bps must be positive, got {self.uplink_bps}"
            )
        if self.latency_s < 0:
            raise ValueError(
                f"latency_s must be non-negative, got {self.latency_s}"
            )

    @property
    def effective_uplink_bps(self) -> float:
        return self.uplink_bps if self.uplink_bps is not None else self.bandwidth_bps

    def transfer_time(self, total_bytes: int, roundtrips: int) -> float:
        """Estimated wall-clock seconds to move ``total_bytes`` downlink."""
        serialization = 8.0 * total_bytes / self.bandwidth_bps
        propagation = 2.0 * self.latency_s * roundtrips
        return serialization + propagation

    def transfer_time_directional(
        self,
        client_to_server_bytes: int,
        server_to_client_bytes: int,
        roundtrips: int,
    ) -> float:
        """Wall-clock estimate with per-direction bandwidths."""
        up = 8.0 * client_to_server_bytes / self.effective_uplink_bps
        down = 8.0 * server_to_client_bytes / self.bandwidth_bps
        propagation = 2.0 * self.latency_s * roundtrips
        return up + down + propagation

    def transfer_seconds(
        self,
        client_to_server_bytes,
        server_to_client_bytes,
        roundtrips,
    ) -> float:
        """Accumulating wall-clock estimate over per-item counters.

        The vectorized sibling of :meth:`transfer_time_directional`:
        each argument may be a scalar or a sequence/array of per-file
        (or per-wave) counters, broadcast against each other; the return
        value is the summed wall-clock estimate.  This is the one
        formula the pipelined scheduler and the collection reports
        share, so ``link_wall_clock_s`` means the same thing wherever it
        appears.

        Validation mirrors the constructor's: negative counters are a
        caller bug and are rejected eagerly, not folded into a
        nonsensical estimate.
        """
        import numpy as np

        up_bytes = np.asarray(client_to_server_bytes, dtype=np.float64)
        down_bytes = np.asarray(server_to_client_bytes, dtype=np.float64)
        trips = np.asarray(roundtrips, dtype=np.float64)
        for name, values in (
            ("client_to_server_bytes", up_bytes),
            ("server_to_client_bytes", down_bytes),
            ("roundtrips", trips),
        ):
            if np.any(values < 0):
                raise ValueError(f"{name} must be non-negative, got {values}")
        seconds = (
            8.0 * up_bytes / self.effective_uplink_bps
            + 8.0 * down_bytes / self.bandwidth_bps
            + 2.0 * self.latency_s * trips
        )
        return float(np.sum(seconds))


class SimulatedChannel:
    """Orders messages between client and server and accounts their size.

    Usage::

        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, payload, phase="map")
        payload = channel.receive(Direction.CLIENT_TO_SERVER)
    """

    def __init__(self, link: LinkModel | None = None) -> None:
        self.link = link or LinkModel()
        self.stats = TransferStats()
        self._queues: dict[Direction, list[bytes]] = {
            Direction.CLIENT_TO_SERVER: [],
            Direction.SERVER_TO_CLIENT: [],
        }
        self._last_direction: Direction | None = None
        self._closed = False
        #: Protocol round the traffic currently belongs to (0 = before the
        #: first round); protocols advance it via :meth:`mark_round` so
        #: fault injection can report *where* in the exchange a fault hit.
        self.current_round = 0

    def close(self) -> None:
        """Close the channel; further sends raise ``ChannelClosedError``."""
        self._closed = True

    def mark_round(self, index: int) -> None:
        """Tag subsequent traffic as belonging to protocol round ``index``."""
        if index < 0:
            raise ValueError(f"round index must be non-negative, got {index}")
        self.current_round = index

    @property
    def roundtrips(self) -> int:
        """Direction reversals seen so far (≈ one-way message exchanges)."""
        return self.stats.roundtrips

    def send(
        self,
        direction: Direction,
        payload: bytes,
        phase: str,
        bits: int | None = None,
    ) -> None:
        """Transmit one framed message.

        The framed size is the payload itself — framing overhead is a
        wash across all compared methods, and the paper reports raw
        protocol payloads.  ``bits`` gives the exact payload width for
        bit-packed messages whose final byte is padding; byte boundaries
        are charged once per (direction, phase) bucket, mirroring how the
        paper batches many files into each roundtrip.
        """
        if self._closed:
            raise ChannelClosedError("send on a closed channel")
        if bits is None:
            bits = 8 * len(payload)
        elif not 0 <= 8 * len(payload) - bits < 8:
            raise ValueError(
                f"bits={bits} inconsistent with a {len(payload)}-byte payload"
            )
        self.stats.record_bits(direction, phase, bits)
        if direction is not self._last_direction:
            self.stats.roundtrips += 1
            self._last_direction = direction
        self._queues[direction].append(payload)

    def receive(self, direction: Direction) -> bytes:
        """Pop the oldest undelivered message travelling in ``direction``."""
        if self._closed:
            raise ChannelClosedError("receive on a closed channel")
        queue = self._queues[direction]
        if not queue:
            raise ChannelEmptyError(f"no pending message in {direction.value}")
        return queue.pop(0)

    def pending(self, direction: Direction) -> int:
        """Number of undelivered messages in ``direction``."""
        return len(self._queues[direction])

    def estimated_transfer_time(self) -> float:
        """Wall-clock estimate for everything sent so far on this link."""
        return self.link.transfer_time_directional(
            self.stats.client_to_server_bytes,
            self.stats.server_to_client_bytes,
            self.stats.roundtrips,
        )
