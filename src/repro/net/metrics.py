"""Transfer statistics: bytes by direction and phase, messages, roundtrips."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum


class Direction(Enum):
    """Who is sending."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    @property
    def opposite(self) -> "Direction":
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


def _bits_to_bytes(bits: int) -> int:
    return (bits + 7) // 8


@dataclass
class TransferStats:
    """Bit-exact transfer accounting for one synchronization run.

    ``bits_by`` is keyed by ``(direction, phase)``; phases are free-form
    strings chosen by the protocols (``"map"``, ``"delta"``,
    ``"fingerprint"``, ...).  Sizes are recorded in *bits* because the
    map-construction protocol sends sub-byte hashes and, as in the paper,
    many files share each roundtrip — so byte boundaries amortise across
    a whole batch rather than being paid per tiny message.  All byte
    queries round up once per (direction, phase) bucket, which keeps
    per-phase, per-direction and total figures mutually consistent.
    """

    bits_by: Counter = field(default_factory=Counter)
    messages: int = 0
    roundtrips: int = 0
    #: Wire bits burnt by failed protocol attempts that had to be redone.
    #: Kept *separate* from ``bits_by`` so ``total_bytes`` still reports
    #: the useful payload (comparable across methods) while benchmarks can
    #: surface the true cost of recovery on a faulty link.
    retransmitted_bits: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(_bits_to_bytes(bits) for bits in self.bits_by.values())

    @property
    def retransmitted_bytes(self) -> int:
        return _bits_to_bytes(self.retransmitted_bits)

    def bytes_in_direction(self, direction: Direction) -> int:
        return sum(
            _bits_to_bytes(bits)
            for (message_direction, _phase), bits in self.bits_by.items()
            if message_direction is direction
        )

    def bytes_in_phase(self, phase: str) -> int:
        return sum(
            _bits_to_bytes(bits)
            for (_direction, message_phase), bits in self.bits_by.items()
            if message_phase == phase
        )

    @property
    def client_to_server_bytes(self) -> int:
        return self.bytes_in_direction(Direction.CLIENT_TO_SERVER)

    @property
    def server_to_client_bytes(self) -> int:
        return self.bytes_in_direction(Direction.SERVER_TO_CLIENT)

    def phases(self) -> list[str]:
        """All phases that transferred bytes, in deterministic order."""
        return sorted({phase for _direction, phase in self.bits_by})

    def record(self, direction: Direction, phase: str, nbytes: int) -> None:
        """Account for one byte-aligned framed message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.record_bits(direction, phase, 8 * nbytes)

    def record_bits(self, direction: Direction, phase: str, nbits: int) -> None:
        """Account for one message of exactly ``nbits`` payload bits."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        self.bits_by[(direction, phase)] += nbits
        self.messages += 1

    def record_retransmission(self, wasted: "TransferStats") -> None:
        """Fold a failed attempt's traffic into the retransmission bucket.

        The wasted attempt's bytes crossed the wire but bought nothing;
        they are charged to ``retransmitted_bits`` (including anything the
        failed attempt itself already wrote there) rather than to the
        per-phase payload accounting.
        """
        self.retransmitted_bits += (
            sum(wasted.bits_by.values()) + wasted.retransmitted_bits
        )

    def reclassify_phase_as_retransmission(self, phase: str) -> int:
        """Move everything recorded under ``phase`` into ``retransmitted_bits``.

        Recovery traffic that was recorded optimistically under a payload
        phase (e.g. the rsync full-transfer fallback's NACK plus the whole
        compressed file) is recovery cost, not first-try payload: charging
        it like every other recovery path keeps ``total_bytes`` comparable
        across methods.  Message and roundtrip counts are untouched — the
        frames did cross the wire.  Returns the number of bits moved.
        """
        moved = 0
        for key in [k for k in self.bits_by if k[1] == phase]:
            moved += self.bits_by.pop(key)
        self.retransmitted_bits += moved
        return moved

    def merge(self, other: "TransferStats") -> None:
        """Fold another run's accounting into this one (collection sync).

        Merging is order-insensitive: parallel collection sync folds
        worker results in completion order, so after every merge the
        phase buckets are re-canonicalised.  Any two merge orders of the
        same runs therefore yield identical iteration order, ``str()``
        output and breakdowns.
        """
        self.bits_by.update(other.bits_by)
        self._canonicalise()
        self.messages += other.messages
        self.roundtrips = max(self.roundtrips, other.roundtrips)
        self.retransmitted_bits += other.retransmitted_bits

    def _canonicalise(self) -> None:
        """Rebuild ``bits_by`` in (direction, phase) sorted insertion order."""
        ordered = sorted(
            self.bits_by.items(),
            key=lambda item: (item[0][0].value, item[0][1]),
        )
        self.bits_by.clear()
        for key, bits in ordered:
            self.bits_by[key] = bits

    def breakdown(self) -> dict[str, int]:
        """Human-oriented ``{"s2c/map": bytes, ...}`` view.

        Keys are sorted by (direction, phase) regardless of the order in
        which phases recorded traffic — stable under out-of-order worker
        completion.
        """
        return {
            f"{direction.value}/{phase}": _bits_to_bytes(bits)
            for (direction, phase), bits in sorted(
                self.bits_by.items(),
                key=lambda item: (item[0][0].value, item[0][1]),
            )
        }

    def __str__(self) -> str:
        parts = ", ".join(
            f"{label}={count}" for label, count in self.breakdown().items()
        )
        return (
            f"TransferStats(total={self.total_bytes}B, "
            f"roundtrips={self.roundtrips}, {parts})"
        )
