"""Seeded chaos schedules: fault plans whose rates vary over time.

A flat :class:`~repro.net.faults.FaultPlan` models a uniformly bad link;
real links fail in *shapes* — bursts of loss, periodic interference, a
slowly degrading line.  :class:`ChaosProfile` describes such a shape as
a deterministic function of the send index, and
:class:`ScheduledFaultPlan` replays it through the ordinary fault-plan
machinery: one seeded RNG draw per send in transmit order, so a given
``(shape, seed, rate)`` triple reproduces the exact same fault sequence
everywhere — including across the retry attempts of a supervisor
sharing the plan.

The chaos-soak harness (:mod:`repro.bench.soak`) sweeps a small matrix
of these shapes × seeds over multi-file collection runs; the CI
``chaos-soak`` job runs the short profile on every push.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.net.faults import FaultKind, FaultPlan

#: The shapes :func:`chaos_plan` knows how to build.
CHAOS_SHAPES = ("steady", "bursty", "periodic", "degrading")


@dataclass(frozen=True)
class ChaosProfile:
    """A deterministic fault-rate envelope over the send index.

    ``rate`` is the headline (peak) rate; ``quiet_rate`` the floor
    between episodes.  ``burst_every`` sends start a new cycle,
    ``burst_length`` of which run at the peak (``bursty``) — the
    ``periodic`` shape instead alternates half-cycles, and
    ``degrading`` ramps linearly from floor to peak over
    ``ramp_sends`` sends and stays there.
    """

    shape: str = "steady"
    rate: float = 0.2
    quiet_rate: float = 0.0
    burst_every: int = 200
    burst_length: int = 40
    ramp_sends: int = 1000

    def __post_init__(self) -> None:
        if self.shape not in CHAOS_SHAPES:
            raise ValueError(
                f"shape must be one of {CHAOS_SHAPES}, got {self.shape!r}"
            )
        for label in ("rate", "quiet_rate"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        if self.quiet_rate > self.rate:
            raise ValueError("quiet_rate must not exceed rate")
        if self.burst_every < 1:
            raise ValueError("burst_every must be >= 1")
        if not 0 <= self.burst_length <= self.burst_every:
            raise ValueError("burst_length must be in [0, burst_every]")
        if self.ramp_sends < 1:
            raise ValueError("ramp_sends must be >= 1")

    def rate_at(self, send_index: int) -> float:
        """Instantaneous headline fault rate for the given send (0-based)."""
        if self.shape == "steady":
            return self.rate
        if self.shape == "bursty":
            if send_index % self.burst_every < self.burst_length:
                return self.rate
            return self.quiet_rate
        if self.shape == "periodic":
            if (send_index // self.burst_every) % 2 == 1:
                return self.rate
            return self.quiet_rate
        # degrading: linear ramp floor → peak, then pinned at peak.
        fraction = min(1.0, send_index / self.ramp_sends)
        return self.quiet_rate + fraction * (self.rate - self.quiet_rate)


@dataclass
class ScheduledFaultPlan(FaultPlan):
    """A :class:`FaultPlan` whose rates follow a :class:`ChaosProfile`.

    Before every draw the instantaneous headline rate is split exactly
    like :meth:`FaultPlan.uniform` (half corruption, a quarter
    truncation, a quarter drops), preserving the one-RNG-draw-per-send
    contract — so two plans with the same profile and seed inject
    identical fault sequences regardless of what traffic they carry.
    """

    profile: ChaosProfile | None = None

    def next_fault(self, phase: str, round_index: int = 0) -> FaultKind | None:
        if self.profile is not None:
            headline = self.profile.rate_at(self.sends_seen)
            self.corrupt_rate = headline / 2
            self.truncate_rate = headline / 4
            self.drop_rate = headline / 4
        return super().next_fault(phase, round_index)


def chaos_plan(
    shape: str,
    seed: int = 0,
    rate: float = 0.2,
    **profile_overrides,
) -> ScheduledFaultPlan:
    """Build a :class:`ScheduledFaultPlan` for one named shape.

    The per-shape defaults are tuned for soak runs over collection-scale
    traffic (a few thousand sends): bursts that swallow whole protocol
    phases, periods comparable to a file's session length, and a ramp
    that crosses from harmless to hostile mid-run.
    """
    defaults: dict[str, dict[str, object]] = {
        "steady": {},
        "bursty": {"burst_every": 240, "burst_length": 48},
        "periodic": {"burst_every": 160},
        "degrading": {"quiet_rate": 0.0, "ramp_sends": 1500},
    }
    if shape not in defaults:
        raise ValueError(
            f"shape must be one of {CHAOS_SHAPES}, got {shape!r}"
        )
    settings: dict[str, object] = dict(defaults[shape])
    settings.update(profile_overrides)
    profile = ChaosProfile(shape=shape, rate=rate, **settings)
    return ScheduledFaultPlan(seed=seed, profile=profile)


@dataclass
class BitRotPlan:
    """Seeded, deterministic bit rot for a replica store on disk.

    The wire plans above attack traffic; this one attacks *rest*: it
    flips ``flips_per_file`` seeded bits in each of ``files_affected``
    victim files under a store root, writing the damage back in place —
    deliberately not via the store's atomic temp+rename path, because
    media rot does not fsync.  Victims are chosen deterministically from
    the sorted file list, so a given ``(seed, root contents)`` pair
    always rots the same bytes; the scrubber soak relies on that to
    replay its convergence proof.

    Quarantine entries, in-flight ``.repro.tmp`` temporaries and empty
    files are never touched.  Returns the victims' store-relative names.
    """

    seed: int = 0
    files_affected: int = 1
    flips_per_file: int = 1

    #: Every flip applied, as ``(name, byte_offset, bit)`` — test and
    #: soak reporting hooks.
    rot_log: list[tuple[str, int, int]] = field(
        default_factory=list, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.files_affected < 1:
            raise ValueError("files_affected must be >= 1")
        if self.flips_per_file < 1:
            raise ValueError("flips_per_file must be >= 1")

    def apply(self, root: str | Path, names: list[str] | None = None) -> list[str]:
        """Rot files under ``root``; return the affected relative names.

        ``names`` (optional) restricts the victim pool to specific
        store-relative names instead of everything on disk.
        """
        from repro.collection.store import TMP_SUFFIX
        from repro.resilience.recovery import QUARANTINE_DIR

        root = Path(root)
        rng = random.Random(self.seed)
        if names is not None:
            pool = [name for name in sorted(names) if (root / name).is_file()]
        else:
            pool = sorted(
                str(path.relative_to(root))
                for path in root.rglob("*")
                if path.is_file()
                and QUARANTINE_DIR not in path.relative_to(root).parts
                and not path.name.endswith(TMP_SUFFIX)
            )
        pool = [name for name in pool if (root / name).stat().st_size > 0]
        if not pool:
            return []
        victims = sorted(
            rng.sample(pool, min(self.files_affected, len(pool)))
        )
        for name in victims:
            path = root / name
            data = bytearray(path.read_bytes())
            for _ in range(self.flips_per_file):
                bit = rng.randrange(8 * len(data))
                data[bit // 8] ^= 1 << (bit % 8)
                self.rot_log.append((name, bit // 8, bit % 8))
            path.write_bytes(bytes(data))
        return victims
