"""Synchronise an entire replicated collection with any per-file method."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.syncmethod import MethodOutcome, SyncMethod
from repro.collection.manifest import Manifest, ManifestDiff, diff_manifests
from repro.exceptions import IntegrityError
from repro.parallel.executor import FileTask, SyncExecutor


@dataclass
class CollectionReport:
    """Aggregated accounting for one collection update.

    Byte accounting (``total_bytes``, ``per_file``, ``reconstructed``) is
    deterministic and identical across serial and parallel execution; the
    compute-cost fields (``per_file_seconds``, ``cpu_seconds``, cache
    counters) describe where and how the work actually ran.

    The resilience fields stay empty on a clean run: ``retries`` maps a
    file to the failed attempts its sync burnt, ``fallbacks`` to the
    ladder rung (or collection-level rescue) that finally moved it, and
    ``failed`` to the error that stopped it (``on_error="skip"`` only).
    """

    method: str
    manifest_bytes: int
    diff: ManifestDiff
    per_file: dict[str, MethodOutcome] = field(default_factory=dict)
    added_bytes: int = 0
    reconstructed: dict[str, bytes] = field(default_factory=dict)
    workers: int = 1
    per_file_seconds: dict[str, float] = field(default_factory=dict)
    cpu_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    ref_cache_hits: int = 0
    ref_cache_misses: int = 0
    arena_used: bool = False
    arena_bytes: int = 0
    retries: dict[str, int] = field(default_factory=dict)
    fallbacks: dict[str, str] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    #: Wire-latency accounting (always filled for the changed files):
    #: ``roundtrips_on_wire`` counts direction reversals on the (real or
    #: modelled) link — per-file sums for the sequential path, the shared
    #: multiplexed channel's count for the pipelined path — and
    #: ``link_wall_clock_s`` the modelled wall clock those bytes and
    #: reversals cost on the configured :class:`~repro.net.LinkModel`.
    pipelined: bool = False
    waves: int = 0
    mux_overhead_bytes: int = 0
    roundtrips_on_wire: int = 0
    link_wall_clock_s: float = 0.0
    #: Reuse-layer counters (DESIGN §17), all zero on a clean default
    #: run: ``dedup_hits`` counts added files served by content identity
    #: from blobs the client already holds (renames), the memo pair the
    #: delta-memo cache's hit/miss deltas, ``sibling_refs_used`` added
    #: files delta-coded against a similar sibling instead of sent in
    #: full, and ``bytes_saved_vs_self_ref`` the wire bytes those reuse
    #: decisions saved versus self-reference-only transfer.
    dedup_hits: int = 0
    delta_memo_hits: int = 0
    delta_memo_misses: int = 0
    sibling_refs_used: int = 0
    bytes_saved_vs_self_ref: int = 0

    @property
    def changed_transfer_bytes(self) -> int:
        return sum(outcome.total_bytes for outcome in self.per_file.values())

    @property
    def total_bytes(self) -> int:
        return self.manifest_bytes + self.changed_transfer_bytes + self.added_bytes

    @property
    def files_changed(self) -> int:
        return len(self.diff.changed)

    @property
    def files_unchanged(self) -> int:
        return len(self.diff.unchanged)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def files_fallback(self) -> int:
        return len(self.fallbacks)

    @property
    def files_failed(self) -> int:
        return len(self.failed)

    @property
    def retransmitted_bytes(self) -> int:
        return sum(
            outcome.retransmitted_bytes for outcome in self.per_file.values()
        )

    @property
    def rounds_salvaged(self) -> int:
        """Protocol rounds resumed from checkpoints instead of re-run."""
        return sum(
            outcome.rounds_salvaged for outcome in self.per_file.values()
        )

    @property
    def resume_handshake_bits(self) -> int:
        """Wire cost of every resume handshake across the collection."""
        return sum(
            outcome.resume_handshake_bits for outcome in self.per_file.values()
        )

    @property
    def checkpoint_bytes_written(self) -> int:
        """Local journal bytes fsynced (disk cost, never wire cost)."""
        return sum(
            outcome.checkpoint_bytes_written
            for outcome in self.per_file.values()
        )

    @property
    def health_score(self) -> float:
        """Worst link-health estimate seen across the collection.

        ``1.0`` (the pristine default) unless an adaptive policy ran and
        observed failures — happy-path reports are untouched.
        """
        if not self.per_file:
            return 1.0
        return min(
            outcome.health_score for outcome in self.per_file.values()
        )

    @property
    def breaker_opens(self) -> int:
        """Circuit-breaker trips across the collection."""
        return sum(
            outcome.breaker_opens for outcome in self.per_file.values()
        )

    @property
    def deadline_salvages(self) -> int:
        """Checkpointed rounds preserved by deadline breaches."""
        return sum(
            outcome.deadline_salvages for outcome in self.per_file.values()
        )

    @property
    def adaptive_backoff_s(self) -> float:
        """Simulated seconds the AIMD backoff schedule spent waiting."""
        return sum(
            outcome.adaptive_backoff_s for outcome in self.per_file.values()
        )

    @property
    def collisions_detected(self) -> int:
        """Whole-file fingerprint rejections across the collection."""
        return sum(
            outcome.collisions_detected for outcome in self.per_file.values()
        )

    @property
    def repair_rounds(self) -> int:
        """Group-digest descent roundtrips spent localizing collisions."""
        return sum(
            outcome.repair_rounds for outcome in self.per_file.values()
        )

    @property
    def repair_bytes(self) -> int:
        """Wire bytes of the surgical repair exchanges."""
        return sum(
            outcome.repair_bytes for outcome in self.per_file.values()
        )

    def summary(self) -> dict[str, int]:
        return {
            "manifest": self.manifest_bytes,
            "changed": self.changed_transfer_bytes,
            "added": self.added_bytes,
            "total": self.total_bytes,
        }


def sync_collection_batched(
    client_files: dict[str, bytes],
    server_files: dict[str, bytes],
    config=None,
    verify: bool = True,
) -> CollectionReport:
    """Like :func:`sync_collection` with our protocol, but every changed
    file shares the same roundtrips (``repro.core.synchronize_batch``).

    This is the deployment mode the paper assumes for large collections:
    recursive splitting costs latency once per *collection*, not once per
    file.
    """
    from repro.core.batch import synchronize_batch
    from repro.syncmethod import MethodOutcome

    client_manifest = Manifest.of_collection(client_files)
    server_manifest = Manifest.of_collection(server_files)
    diff = diff_manifests(client_manifest, server_manifest)

    report = CollectionReport(
        method="ours-batched",
        manifest_bytes=server_manifest.wire_bytes(),
        diff=diff,
    )
    for name in diff.unchanged:
        report.reconstructed[name] = client_files[name]
    for name in diff.added:
        payload = zlib.compress(server_files[name], 9)
        report.added_bytes += len(payload)
        report.reconstructed[name] = zlib.decompress(payload)

    if diff.changed:
        batch = synchronize_batch(
            {name: client_files[name] for name in diff.changed},
            {name: server_files[name] for name in diff.changed},
            config,
        )
        report.reconstructed.update(batch.reconstructed)
        # Attribute the shared cost to one aggregate outcome entry.
        report.per_file["<batch>"] = MethodOutcome(
            total_bytes=batch.total_bytes,
            client_to_server=batch.stats.client_to_server_bytes,
            server_to_client=batch.stats.server_to_client_bytes,
            breakdown=dict(batch.stats.breakdown()),
        )

    if verify:
        for name, data in server_files.items():
            if report.reconstructed.get(name) != data:
                raise IntegrityError(
                    f"batched reconstruction differs at {name}"
                )
    return report


def _transfer_added(
    report: CollectionReport,
    client_files: dict[str, bytes],
    server_files: dict[str, bytes],
    added,
    client_manifest: Manifest,
    sibling_refs: bool,
    resemblance_threshold: float,
) -> None:
    """Transfer the files the client lacks entirely.

    Default: compressed full transfer, exactly the pre-reuse behaviour.
    With ``sibling_refs`` each added file is first matched by content
    identity (the client already holds these bytes under another name —
    a rename, zero wire bytes beyond the manifest) and then against the
    most similar client file by min-hash resemblance (delta-coded when
    that beats the full transfer).  Every decision takes the cheaper
    payload, so the option never costs bytes.
    """
    index = None
    by_fingerprint: dict[bytes, str] = {}
    if sibling_refs and client_files:
        from repro.reuse.similarity import SimilarityIndex

        # Earliest name wins per content (sorted = deterministic).
        for name in sorted(client_files, reverse=True):
            by_fingerprint[client_manifest.entries[name]] = name
        index = SimilarityIndex()
        for name in sorted(client_files):
            index.add(name, client_files[name])
    for name in added:
        new = server_files[name]
        payload = zlib.compress(new, 9)
        if by_fingerprint:
            from repro.hashing.strong import file_fingerprint

            twin = by_fingerprint.get(file_fingerprint(new))
            if twin is not None:
                # Rename: content-identical bytes already on the client.
                report.dedup_hits += 1
                report.bytes_saved_vs_self_ref += len(payload)
                report.reconstructed[name] = client_files[twin]
                continue
        if index is not None:
            candidate = index.best_reference(
                new, threshold=resemblance_threshold
            )
            if candidate is not None:
                from repro.delta.encoder import zdelta_decode, zdelta_encode

                sibling_name, _resemblance = candidate
                sibling = client_files[sibling_name]
                delta = zdelta_encode(sibling, new)
                if len(delta) < len(payload):
                    report.added_bytes += len(delta)
                    report.sibling_refs_used += 1
                    report.bytes_saved_vs_self_ref += (
                        len(payload) - len(delta)
                    )
                    report.reconstructed[name] = zdelta_decode(sibling, delta)
                    continue
        report.added_bytes += len(payload)
        report.reconstructed[name] = zlib.decompress(payload)


def sync_collection(
    client_files: dict[str, bytes],
    server_files: dict[str, bytes],
    method: SyncMethod,
    verify: bool = True,
    change_detection: str = "manifest",
    workers: int | None = 1,
    use_arena: bool | None = None,
    executor: SyncExecutor | None = None,
    on_error: str = "raise",
    fault_plan=None,
    retry_policy=None,
    link=None,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoints=None,
    store=None,
    adaptive_retry=False,
    deadline_s: float | None = None,
    run_deadline_s: float | None = None,
    breaker_threshold=None,
    pipeline: bool = False,
    window: int = 8,
    delta_memo: bool | None = None,
    sibling_refs: bool = False,
    resemblance_threshold: float = 0.5,
) -> CollectionReport:
    """Update ``client_files`` to ``server_files`` using ``method``.

    Cross-file reuse (DESIGN §17): ``delta_memo`` scopes the process-wide
    delta-memo switch for this update — ``True`` memoizes instruction
    lists and encoded payloads by content pair (byte-identical, wall-clock
    only), ``False`` forces it off, ``None`` (default) defers to
    ``REPRO_DELTA_MEMO``.  ``sibling_refs`` serves *added* files (no
    previous version on the client) by content identity when the client
    already holds the same bytes under another name (a rename — counted
    in ``report.dedup_hits``) or as a delta against the most similar
    client file clearing ``resemblance_threshold`` (min-hash estimate,
    counted in ``report.sibling_refs_used``); the compressed full
    transfer remains the fallback, and the cheaper of delta and full
    always wins, so enabling it never costs wire bytes.  Both knobs
    default to off, leaving reports byte-identical to a run without them.
    """
    from repro.reuse.memo import delta_memo_scope

    with delta_memo_scope(None if delta_memo is None else bool(delta_memo)):
        return _sync_collection_impl(
            client_files,
            server_files,
            method,
            verify=verify,
            change_detection=change_detection,
            workers=workers,
            use_arena=use_arena,
            executor=executor,
            on_error=on_error,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            link=link,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            checkpoints=checkpoints,
            store=store,
            adaptive_retry=adaptive_retry,
            deadline_s=deadline_s,
            run_deadline_s=run_deadline_s,
            breaker_threshold=breaker_threshold,
            pipeline=pipeline,
            window=window,
            sibling_refs=sibling_refs,
            resemblance_threshold=resemblance_threshold,
        )


def _sync_collection_impl(
    client_files: dict[str, bytes],
    server_files: dict[str, bytes],
    method: SyncMethod,
    verify: bool = True,
    change_detection: str = "manifest",
    workers: int | None = 1,
    use_arena: bool | None = None,
    executor: SyncExecutor | None = None,
    on_error: str = "raise",
    fault_plan=None,
    retry_policy=None,
    link=None,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoints=None,
    store=None,
    adaptive_retry=False,
    deadline_s: float | None = None,
    run_deadline_s: float | None = None,
    breaker_threshold=None,
    pipeline: bool = False,
    window: int = 8,
    sibling_refs: bool = False,
    resemblance_threshold: float = 0.5,
) -> CollectionReport:
    """The update itself (the public wrapper holds the memo scope).

    Change detection is charged first — either the full fingerprint
    manifest (``"manifest"``, the paper's approach) or Merkle-trie
    reconciliation (``"reconcile"``, cost proportional to the number of
    changes).  Unchanged files cost nothing further; files only on the
    server are sent compressed; changed files go through the per-file
    method.  With ``verify`` (default) the reconstructed collection is
    checked byte-for-byte.

    ``workers`` (or a preconfigured ``executor``) fans the changed files
    out over a process pool; results are reassembled in manifest order so
    the report's byte accounting is identical to the serial run.
    ``workers=None`` uses one process per CPU.  ``use_arena`` picks the
    dispatch substrate for the pool: ``None`` (default) ships payloads
    through a zero-copy shared-memory arena when the platform supports
    it, ``False`` forces the classic pickle path, ``True`` insists on
    trying the arena.  Reports are byte-identical either way.

    Resilience: passing a ``fault_plan``
    (:class:`~repro.net.faults.FaultPlan`) and/or a ``retry_policy``
    (:class:`~repro.resilience.RetryPolicy`) wraps ``method`` in a
    :class:`~repro.resilience.SyncSupervisor` that retries and degrades
    down a fallback ladder per file.  ``on_error`` controls per-file
    error isolation when a file still cannot be synchronised:

    * ``"raise"`` (default) — propagate the error, aborting the update;
    * ``"skip"`` — keep the client's copy, record the error in
      ``report.failed``;
    * ``"fallback"`` — rescue the file with a reliable compressed full
      transfer, charged to its outcome and recorded in
      ``report.fallbacks``; the update never raises.

    Resumable sessions: ``checkpoint_dir`` (or a preconfigured
    ``checkpoints`` :class:`~repro.resilience.CheckpointStore`) makes
    every checkpoint-capable file session journal its round boundaries
    there, one file per entry; retries resume from the last completed
    round.  ``resume=True`` additionally honours journals left by a
    *previous* (crashed) run — it requires a durable checkpoint location
    and raises :class:`~repro.exceptions.ResumeRefusedError` without one.
    All three parameters default to off, leaving behaviour and byte
    accounting identical to a run without them.

    ``store`` (a :class:`~repro.collection.store.CollectionStore` or a
    directory path) materialises the reconstructed collection on disk,
    every file written atomically — a crash mid-update can orphan
    temporaries but never tear a visible file.

    Adaptive resilience (DESIGN §14): ``adaptive_retry`` (``True`` or an
    :class:`~repro.resilience.AdaptiveRetryPolicy`) replaces the static
    backoff with AIMD scaling, seeded jitter and failure-signature
    ladder routing; ``breaker_threshold`` (an int, or a preconfigured
    :class:`~repro.resilience.BreakerBoard`) gives every file a circuit
    breaker; ``deadline_s`` bounds the simulated seconds spent per file
    and ``run_deadline_s`` across the whole run (run deadlines force
    serial execution so the shared budget is charged deterministically).
    With breakers or deadlines configured the run *degrades gracefully*:
    a file refused by its breaker or out of budget is recorded in
    ``report.failed`` (keeping the client copy) even under
    ``on_error="raise"``, which then raises
    :class:`~repro.exceptions.SyncFailedError` only for other errors.
    All four default to off, leaving behaviour byte-identical to a run
    without them.

    Pipelined scheduling (DESIGN §16): ``pipeline=True`` interleaves the
    changed files' protocol rounds — up to ``window`` in flight — over
    one multiplexed channel so the link's round-trip latency is paid per
    *wave* instead of per file per round
    (:class:`~repro.collection.pipeline.CollectionScheduler`).  Per-file
    transcripts, byte accounting and round checkpoints stay bit-identical
    to the sequential run; only ``roundtrips_on_wire`` and
    ``link_wall_clock_s`` collapse.  Requires a method with a step-wise
    session (``supports_pipeline``), forces serial in-process compute,
    and is incompatible with fault injection, retries, breakers,
    deadlines and ``on_error`` isolation (checkpoints/resume compose
    fine).
    """
    if on_error not in ("raise", "skip", "fallback"):
        raise ValueError(
            f"on_error must be 'raise', 'skip' or 'fallback', "
            f"got {on_error!r}"
        )
    if pipeline:
        if not getattr(method, "supports_pipeline", False):
            raise ValueError(
                f"method {method.name} does not support pipelined "
                f"scheduling (no step-wise session)"
            )
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if (
            fault_plan is not None
            or retry_policy is not None
            or adaptive_retry
            or breaker_threshold is not None
            or deadline_s is not None
            or run_deadline_s is not None
        ):
            raise ValueError(
                "pipeline=True is incompatible with fault injection, "
                "retries, breakers and deadlines — run those sequentially"
            )
        if on_error != "raise":
            raise ValueError(
                "pipeline=True is incompatible with on_error isolation; "
                "use on_error='raise'"
            )
        if executor is not None:
            raise ValueError(
                "pipeline=True forces serial in-process execution; "
                "drop executor="
            )
    if checkpoints is None and checkpoint_dir is not None:
        from repro.resilience import CheckpointStore

        checkpoints = CheckpointStore(checkpoint_dir, resume=resume)
    if resume and (checkpoints is None or checkpoints.root is None):
        from repro.exceptions import ResumeRefusedError

        raise ResumeRefusedError(
            "resume=True needs a durable checkpoint location "
            "(checkpoint_dir or a CheckpointStore with a root)"
        )
    budget = None
    if run_deadline_s is not None:
        from repro.resilience import DeadlineBudget

        budget = DeadlineBudget(run_deadline_s)
        # The run-level budget is shared mutable state charged by every
        # file in sequence; pool workers each mutate their own pickled
        # copy, so a run deadline forces serial execution.
        workers = 1
        executor = None
    if adaptive_retry:
        from repro.resilience import AdaptiveRetryPolicy

        if isinstance(adaptive_retry, AdaptiveRetryPolicy):
            retry_policy = adaptive_retry
        elif not isinstance(retry_policy, AdaptiveRetryPolicy):
            # Mirror a given static schedule into the adaptive policy so
            # `adaptive_retry=True` composes with `retry_policy=...`.
            schedule_kwargs = {}
            if retry_policy is not None:
                schedule_kwargs = dict(
                    max_attempts=retry_policy.max_attempts,
                    base_backoff_s=retry_policy.base_backoff_s,
                    multiplier=retry_policy.multiplier,
                    max_backoff_s=retry_policy.max_backoff_s,
                )
            retry_policy = AdaptiveRetryPolicy(**schedule_kwargs)
    breakers = None
    if breaker_threshold is not None:
        from repro.resilience import BreakerBoard

        if isinstance(breaker_threshold, BreakerBoard):
            breakers = breaker_threshold
        else:
            breakers = BreakerBoard(
                failure_threshold=int(breaker_threshold)
            )
    graceful = (
        breakers is not None or deadline_s is not None or budget is not None
    )
    if (
        fault_plan is not None
        or retry_policy is not None
        or checkpoints is not None
        or graceful
    ) and not pipeline:  # the pipelined scheduler drives journals itself
        from repro.resilience import SyncSupervisor

        if not isinstance(method, SyncSupervisor):
            method = SyncSupervisor(
                method,
                retry=retry_policy,
                fault_plan=fault_plan,
                link=link,
                checkpoints=checkpoints,
                breakers=breakers,
                deadline_s=deadline_s,
                budget=budget,
            )

    client_manifest = Manifest.of_collection(client_files)
    server_manifest = Manifest.of_collection(server_files)
    if change_detection == "manifest":
        diff = diff_manifests(client_manifest, server_manifest)
        detection_bytes = server_manifest.wire_bytes()
    elif change_detection == "reconcile":
        from repro.collection.reconcile import reconcile_manifests

        diff, channel = reconcile_manifests(client_manifest, server_manifest)
        detection_bytes = channel.stats.total_bytes
    else:
        raise ValueError(
            f"change_detection must be 'manifest' or 'reconcile', "
            f"got {change_detection!r}"
        )

    report = CollectionReport(
        method=method.name,
        manifest_bytes=detection_bytes,
        diff=diff,
    )

    for name in diff.unchanged:
        report.reconstructed[name] = client_files[name]
    if diff.added:
        _transfer_added(
            report,
            client_files,
            server_files,
            diff.added,
            client_manifest,
            sibling_refs,
            resemblance_threshold,
        )

    if pipeline:
        from repro.collection.pipeline import CollectionScheduler

        scheduler = CollectionScheduler(
            method, window=window, link=link, checkpoints=checkpoints
        )
        run = scheduler.run(
            [
                (name, client_files[name], server_files[name])
                for name in diff.changed
            ]
        )
        report.workers = 1
        report.pipelined = True
        report.waves = run.waves
        report.mux_overhead_bytes = run.mux_overhead_bytes
        report.roundtrips_on_wire = run.roundtrips_on_wire
        report.link_wall_clock_s = run.link_wall_clock_s
        for name in diff.changed:
            outcome = run.per_file[name]
            report.per_file[name] = outcome
            report.per_file_seconds[name] = run.per_file_seconds[name]
            report.cpu_seconds += run.per_file_seconds[name]
            report.reconstructed[name] = run.reconstructed[name]
            if verify and not outcome.correct:
                raise IntegrityError(f"method {method.name} failed on {name}")

        if verify:
            for name, data in server_files.items():
                if report.reconstructed.get(name) != data:
                    raise IntegrityError(
                        f"collection reconstruction differs at {name}"
                    )
        if store is not None:
            from repro.collection.store import CollectionStore

            if not isinstance(store, CollectionStore):
                store = CollectionStore(store)
            store.write_collection(report.reconstructed)
        return report

    if executor is None:
        executor = SyncExecutor(workers=workers, use_arena=use_arena)
    batch = executor.run(
        method,
        [
            FileTask(name, client_files[name], server_files[name])
            for name in diff.changed
        ],
        # Breakers/deadlines promise graceful degradation, so their typed
        # refusals must be captured (and skipped below) even when other
        # errors still abort the run.
        capture_errors=(on_error != "raise") or graceful,
    )
    report.workers = batch.workers_used
    report.cache_hits = batch.cache_hits
    report.cache_misses = batch.cache_misses
    report.ref_cache_hits = batch.ref_cache_hits
    report.ref_cache_misses = batch.ref_cache_misses
    report.delta_memo_hits = batch.delta_memo_hits
    report.delta_memo_misses = batch.delta_memo_misses
    report.arena_used = batch.arena_used
    report.arena_bytes = batch.arena_bytes
    for result in batch.files:
        name = result.name
        report.per_file_seconds[name] = result.elapsed_seconds
        report.cpu_seconds += result.cpu_seconds
        failed = result.error is not None or not result.outcome.correct
        skip_this = failed and on_error == "skip"
        if failed and on_error == "raise" and graceful:
            if result.error is not None and result.error.startswith(
                ("DeadlineExceededError", "CircuitOpenError")
            ):
                skip_this = True  # graceful degradation, not an abort
            elif result.error is not None:
                from repro.exceptions import SyncFailedError

                raise SyncFailedError(f"{name}: {result.error}")
        if skip_this:
            report.failed[name] = result.error or "IntegrityError: bad bytes"
            report.per_file[name] = result.outcome
            report.reconstructed[name] = client_files[name]
            if result.outcome.retries:
                report.retries[name] = result.outcome.retries
            continue
        if failed and on_error == "fallback":
            # Out-of-band rescue: a reliable compressed full transfer.
            # Everything the doomed attempts sent is charged as
            # retransmission on top of the rescue payload.
            payload_bytes = len(zlib.compress(server_files[name], 9))
            report.per_file[name] = MethodOutcome(
                total_bytes=payload_bytes,
                server_to_client=payload_bytes,
                breakdown={"s2c/rescue": payload_bytes},
                retries=result.outcome.retries,
                fallback_method="rescue-full",
                retransmitted_bytes=(
                    result.outcome.retransmitted_bytes
                    + result.outcome.total_bytes
                ),
                recovery_seconds=result.outcome.recovery_seconds,
                rounds_salvaged=result.outcome.rounds_salvaged,
                resume_handshake_bits=result.outcome.resume_handshake_bits,
                checkpoint_bytes_written=(
                    result.outcome.checkpoint_bytes_written
                ),
                health_score=result.outcome.health_score,
                breaker_opens=result.outcome.breaker_opens,
                deadline_salvages=result.outcome.deadline_salvages,
                adaptive_backoff_s=result.outcome.adaptive_backoff_s,
                collisions_detected=result.outcome.collisions_detected,
                repair_rounds=result.outcome.repair_rounds,
                repair_bytes=result.outcome.repair_bytes,
            )
            report.fallbacks[name] = "rescue-full"
            if result.outcome.retries:
                report.retries[name] = result.outcome.retries
            report.reconstructed[name] = server_files[name]
            continue
        report.per_file[name] = result.outcome
        report.reconstructed[name] = server_files[name]
        if result.outcome.retries:
            report.retries[name] = result.outcome.retries
        if result.outcome.fallback_method:
            report.fallbacks[name] = result.outcome.fallback_method
        if verify and not result.outcome.correct:
            raise IntegrityError(f"method {method.name} failed on {name}")

    # Wire-latency accounting for the sequential path: each file's
    # session pays its own direction reversals on the link, so the
    # collection's cost is the per-file sum — the figure the pipelined
    # scheduler collapses.
    from repro.net.channel import LinkModel

    outcomes = list(report.per_file.values())
    report.sibling_refs_used += sum(o.sibling_refs_used for o in outcomes)
    report.bytes_saved_vs_self_ref += sum(
        o.bytes_saved_vs_self_ref for o in outcomes
    )
    report.roundtrips_on_wire = sum(o.roundtrips for o in outcomes)
    if outcomes:
        report.link_wall_clock_s = (link or LinkModel()).transfer_seconds(
            [o.client_to_server for o in outcomes],
            [o.server_to_client for o in outcomes],
            [o.roundtrips for o in outcomes],
        )

    if verify:
        for name, data in server_files.items():
            if name in report.failed:
                continue  # explicitly skipped; the client keeps its copy
            if report.reconstructed.get(name) != data:
                raise IntegrityError(f"collection reconstruction differs at {name}")

    if store is not None:
        from repro.collection.store import CollectionStore

        if not isinstance(store, CollectionStore):
            store = CollectionStore(store)
        store.write_collection(report.reconstructed)
    return report
