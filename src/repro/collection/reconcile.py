"""Divide-and-conquer change detection (Merkle-trie reconciliation).

The paper sidesteps change detection ("we ... use a fingerprint for each
file as this is efficient enough for our data sets"), but cites the
comparison literature [1, 27, 29, 36] whose point is that a full manifest
costs O(n) even when almost nothing changed.  This module implements the
practical member of that family: both sides arrange their (name,
fingerprint) entries in a binary trie over the hash of the name; digests
are compared level by level, recursing only into subtrees that differ.
Communication is O(Δ · log(n/Δ)) — for a large collection with few
changes it beats the manifest by orders of magnitude, and it degrades
gracefully to manifest-like cost when everything changed.

The exchange is accounted on the simulated channel under the
``"reconcile"`` phase and yields the same
:class:`~repro.collection.manifest.ManifestDiff` the manifest path does.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from repro.collection.manifest import Manifest, ManifestDiff
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction

PHASE_RECONCILE = "reconcile"

#: Transmitted digest width per trie node.
DEFAULT_DIGEST_BYTES = 8
#: Subtrees at or below this size are shipped whole instead of split.
DEFAULT_LEAF_SIZE = 4
_HASH_BITS = 128


@dataclass(frozen=True)
class _Entry:
    position: int  # 128-bit name-hash as int (sort key)
    name: str
    fingerprint: bytes


class _Trie:
    """Sorted-array view of a manifest, addressable by bit prefix."""

    def __init__(self, manifest: Manifest) -> None:
        entries = []
        for name, fingerprint in manifest.entries.items():
            digest = hashlib.md5(b"name:" + name.encode()).digest()
            entries.append(
                _Entry(int.from_bytes(digest, "big"), name, fingerprint)
            )
        entries.sort(key=lambda entry: (entry.position, entry.name))
        self._entries = entries
        self._positions = [entry.position for entry in entries]

    def range(self, depth: int, prefix: int) -> list[_Entry]:
        """Entries whose name-hash starts with ``prefix`` (depth bits)."""
        if depth == 0:
            return self._entries
        low = prefix << (_HASH_BITS - depth)
        high = (prefix + 1) << (_HASH_BITS - depth)
        lo = bisect.bisect_left(self._positions, low)
        hi = bisect.bisect_left(self._positions, high)
        return self._entries[lo:hi]

    def digest(self, depth: int, prefix: int, nbytes: int) -> bytes:
        combined = hashlib.md5()
        for entry in self.range(depth, prefix):
            combined.update(entry.name.encode())
            combined.update(b"\x00")
            combined.update(entry.fingerprint)
        return combined.digest()[:nbytes]


def _read_entries(reader: BitReader) -> list[tuple[str, bytes]]:
    count = reader.read_uvarint()
    received = []
    for _ in range(count):
        name = reader.read_bytes(reader.read_uvarint()).decode()
        received.append((name, reader.read_bytes(16)))
    return received


def reconcile_manifests(
    client: Manifest,
    server: Manifest,
    channel: SimulatedChannel | None = None,
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
    leaf_size: int = DEFAULT_LEAF_SIZE,
) -> tuple[ManifestDiff, SimulatedChannel]:
    """Compute the manifest diff by trie reconciliation over ``channel``.

    Returns the diff (as the *client* learns it) and the channel, whose
    ``"reconcile"`` phase holds the exchange's exact cost.
    """
    if channel is None:
        channel = SimulatedChannel()
    if not 1 <= digest_bytes <= 16:
        raise ValueError(f"digest_bytes must be in [1, 16], got {digest_bytes}")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    client_trie = _Trie(client)
    server_trie = _Trie(server)

    #: (depth, prefix) nodes whose digests still have to be compared.
    frontier: list[tuple[int, int]] = [(0, 0)]
    #: Name/fingerprint pairs the server shipped for differing leaves.
    received_entries: list[tuple[str, bytes]] = []
    #: Trie regions the client must locally re-examine for removals.
    dirty_regions: list[tuple[int, int]] = []

    while frontier:
        # Server -> client: digest + leaf flag per frontier node; leaf
        # nodes carry their entries immediately.
        message = BitWriter()
        server_is_leaf = []
        for depth, prefix in frontier:
            entries = server_trie.range(depth, prefix)
            is_leaf = len(entries) <= leaf_size or depth >= _HASH_BITS
            server_is_leaf.append(is_leaf)
            message.write_bytes(server_trie.digest(depth, prefix, digest_bytes))
            message.write_bit(is_leaf)
            if is_leaf:
                message.write_uvarint(len(entries))
                for entry in entries:
                    encoded = entry.name.encode()
                    message.write_uvarint(len(encoded))
                    message.write_bytes(encoded)
                    message.write_bytes(entry.fingerprint)
        channel.send(
            Direction.SERVER_TO_CLIENT, message.getvalue(), PHASE_RECONCILE,
            bits=message.bit_length,
        )

        # Client: compare digests, expand differing internal nodes.
        reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        next_frontier: list[tuple[int, int]] = []
        reply = BitWriter()
        for node_index, (depth, prefix) in enumerate(frontier):
            remote_digest = reader.read_bytes(digest_bytes)
            is_leaf = bool(reader.read_bit())
            entries = (
                _read_entries(reader) if is_leaf else []
            )
            differs = (
                client_trie.digest(depth, prefix, digest_bytes)
                != remote_digest
            )
            reply.write_bit(differs)
            if not differs:
                continue
            if is_leaf:
                received_entries.extend(entries)
                dirty_regions.append((depth, prefix))
            else:
                next_frontier.append((depth + 1, prefix << 1))
                next_frontier.append((depth + 1, (prefix << 1) | 1))
        channel.send(
            Direction.CLIENT_TO_SERVER, reply.getvalue(), PHASE_RECONCILE,
            bits=reply.bit_length,
        )
        # Server reads the reply to mirror the recursion (in-process the
        # mirrored frontier is implied; the bytes are what matters).
        channel.receive(Direction.CLIENT_TO_SERVER)
        frontier = next_frontier

    # Client-side classification.
    diff = ManifestDiff()
    server_side = dict(received_entries)
    dirty_client_names = set()
    for depth, prefix in dirty_regions:
        for entry in client_trie.range(depth, prefix):
            dirty_client_names.add(entry.name)
    for name, fingerprint in sorted(server_side.items()):
        if name not in client.entries:
            diff.added.append(name)
        elif client.entries[name] == fingerprint:
            diff.unchanged.append(name)
        else:
            diff.changed.append(name)
    diff.removed = sorted(
        name for name in dirty_client_names if name not in server_side
    )
    # Everything outside the dirty regions is identical on both sides.
    surfaced = set(server_side) | set(diff.removed)
    diff.unchanged.extend(
        sorted(
            name
            for name in client.entries
            if name not in surfaced and name not in dirty_client_names
        )
    )
    diff.unchanged = sorted(set(diff.unchanged))
    return diff, channel
