"""Whole-collection synchronization.

The paper's target scenario is not one file but hundreds of thousands:
this layer exchanges a fingerprint manifest to find files that changed,
skips the (typically large) unchanged majority, transfers added files in
full, and runs a per-file synchronization method over the rest, with all
costs aggregated.
"""

from repro.collection.manifest import Manifest, ManifestDiff, diff_manifests
from repro.collection.pipeline import (
    CollectionScheduler,
    PipelineRun,
    RecordingChannel,
)
from repro.collection.reconcile import reconcile_manifests
from repro.collection.store import (
    TMP_SUFFIX,
    CollectionStore,
    ManifestFormatError,
    atomic_write_bytes,
    load_manifest,
    save_manifest,
)
from repro.collection.scrub import ScrubReport, StoreScrubber
from repro.collection.sync import (
    CollectionReport,
    sync_collection,
    sync_collection_batched,
)

__all__ = [
    "CollectionReport",
    "CollectionScheduler",
    "CollectionStore",
    "PipelineRun",
    "RecordingChannel",
    "ScrubReport",
    "StoreScrubber",
    "Manifest",
    "ManifestDiff",
    "TMP_SUFFIX",
    "atomic_write_bytes",
    "diff_manifests",
    "ManifestFormatError",
    "load_manifest",
    "reconcile_manifests",
    "save_manifest",
    "sync_collection",
    "sync_collection_batched",
]
