"""Pipelined round scheduler: many files' protocol rounds on one channel.

The sequential collection path runs each changed file's protocol to
completion before starting the next, so a collection pays the link's
round-trip latency once per round *per file*.  The paper's deployment
model batches many files into each roundtrip instead; this module is the
scheduler that realises it.  Each changed file gets a resumable
step-wise session (``start``/``done``/``step_round``/``finish`` — see
:class:`~repro.core.protocol.CoreSyncSession` and
:class:`~repro.multiround.protocol.MultiroundSession`) running over a
*private* :class:`RecordingChannel`, which keeps its wire transcript and
byte accounting bit-identical to a sequential run.  The
:class:`CollectionScheduler` drives up to ``window`` sessions
concurrently, coalescing each wave's outbound messages into shared
multiplexed batches (:func:`~repro.net.frame.encode_mux_batch`) on one
:class:`~repro.net.channel.SimulatedChannel`, whose direction-reversal
count — and therefore the modelled propagation cost — collapses by
roughly the window factor.

Round checkpoints compose: private channels replay the exact sequential
traffic, so journals written under the pipelined scheduler are
interchangeable with sequential ones (both directions of a crashed run
can resume under the other scheduler).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.frame import (
    MuxSubframe,
    decode_mux_batch,
    encode_mux_batch,
    mux_overhead_bytes,
)
from repro.net.metrics import Direction, TransferStats
from repro.syncmethod import MethodOutcome, SyncMethod, wire_outcome

__all__ = ["CollectionScheduler", "PipelineRun", "RecordingChannel"]

#: Phase tag carried by every multiplexed batch on the shared channel.
MUX_PHASE = "mux"


class RecordingChannel(SimulatedChannel):
    """A :class:`SimulatedChannel` that logs every outbound message.

    The per-file lanes of the pipelined scheduler run on one of these:
    the session sees a perfectly ordinary channel (stats, queues and
    roundtrip counting are untouched, so per-file accounting matches the
    sequential run bit-for-bit), while the scheduler drains ``outbox``
    after every step to mirror the traffic onto the shared multiplexed
    link.  ``transcript`` keeps the full message log for parity checks.
    """

    def __init__(self, link: LinkModel | None = None) -> None:
        super().__init__(link)
        #: Messages sent since the last :meth:`drain_outbox` call.
        self.outbox: list[tuple[Direction, bytes, str, int]] = []
        #: Every message ever sent, in order.
        self.transcript: list[tuple[Direction, bytes, str, int]] = []

    def send(
        self,
        direction: Direction,
        payload: bytes,
        phase: str,
        bits: int | None = None,
    ) -> None:
        super().send(direction, payload, phase, bits)
        entry = (
            direction,
            payload,
            phase,
            bits if bits is not None else 8 * len(payload),
        )
        self.outbox.append(entry)
        self.transcript.append(entry)

    def drain_outbox(self) -> list[tuple[Direction, bytes, str, int]]:
        """Return the messages sent since the last drain and reset it."""
        wave, self.outbox = self.outbox, []
        return wave


@dataclass
class _Lane:
    """One in-flight file: its session, private channel and accounting."""

    name: str
    stream_id: int
    old: bytes
    new: bytes
    channel: RecordingChannel
    session: object | None = None
    journal: object | None = None
    resume_state: object | None = None
    resume_handshake_bits: int = 0
    elapsed_s: float = 0.0
    outcome: MethodOutcome | None = None
    reconstructed: bytes | None = None

    @property
    def finished(self) -> bool:
        return self.outcome is not None


@dataclass
class PipelineRun:
    """Everything a pipelined scheduling pass produced.

    ``link_wall_clock_s`` is the modelled wall clock of the *shared*
    channel (serialization of payload + mux framing, plus two one-way
    latencies per direction reversal) — the figure the sequential path
    computes from per-file counters instead, so the two are directly
    comparable.
    """

    per_file: dict[str, MethodOutcome] = field(default_factory=dict)
    per_file_seconds: dict[str, float] = field(default_factory=dict)
    reconstructed: dict[str, bytes] = field(default_factory=dict)
    transcripts: dict[str, list] = field(default_factory=dict)
    waves: int = 0
    mux_overhead_bytes: int = 0
    roundtrips_on_wire: int = 0
    link_wall_clock_s: float = 0.0
    shared_stats: TransferStats = field(default_factory=TransferStats)


class CollectionScheduler:
    """Drive up to ``window`` per-file sessions round-by-round.

    Every wave runs one step of each in-flight session (handshake, one
    protocol round, or the endgame) on its private channel, then flushes
    the wave's outbound messages onto the shared channel as multiplexed
    batches: slot ``j`` carries message ``j`` of every lane's step,
    grouped by direction (client→server first), one shared send per
    direction group.  Homogeneous files therefore cost the shared link
    one lane's worth of direction reversals per wave instead of one per
    lane — the latency-hiding the paper's batching model assumes.

    The decoded batches are checked against the lanes' originals on
    every flush, so "per-file transcripts bit-identical modulo
    interleaving" is enforced at runtime, not just in tests.
    """

    def __init__(
        self,
        method: SyncMethod,
        window: int = 8,
        link: LinkModel | None = None,
        checkpoints=None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if not getattr(method, "supports_pipeline", False):
            raise ValueError(
                f"method {method.name} does not support pipelined "
                f"scheduling (no step-wise session)"
            )
        self.method = method
        self.window = window
        self.link = link or LinkModel()
        self.checkpoints = checkpoints
        self.shared = SimulatedChannel(self.link)
        self.waves = 0
        self.mux_overhead = 0

    # ------------------------------------------------------------------
    def run(self, files: list[tuple[str, bytes, bytes]]) -> PipelineRun:
        """Synchronise ``(name, old, new)`` triples; return the accounting."""
        pending = [
            _Lane(name, stream_id, old, new, RecordingChannel(self.link))
            for stream_id, (name, old, new) in enumerate(files)
        ]
        run = PipelineRun()
        active: list[_Lane] = []
        cursor = 0
        while cursor < len(pending) or active:
            while cursor < len(pending) and len(active) < self.window:
                active.append(pending[cursor])
                cursor += 1
            self.waves += 1
            self.shared.mark_round(self.waves)
            wave: list[tuple[_Lane, list]] = []
            for lane in active:
                started = time.perf_counter()
                self._step_lane(lane)
                lane.elapsed_s += time.perf_counter() - started
                wave.append((lane, lane.channel.drain_outbox()))
            self._flush_wave(wave)
            for lane in active:
                if lane.finished:
                    run.per_file[lane.name] = lane.outcome
                    run.per_file_seconds[lane.name] = lane.elapsed_s
                    run.reconstructed[lane.name] = lane.reconstructed
                    run.transcripts[lane.name] = lane.channel.transcript
            active = [lane for lane in active if not lane.finished]
        run.waves = self.waves
        run.mux_overhead_bytes = self.mux_overhead
        run.shared_stats = self.shared.stats
        run.roundtrips_on_wire = self.shared.stats.roundtrips
        run.link_wall_clock_s = self.link.transfer_seconds(
            self.shared.stats.client_to_server_bytes,
            self.shared.stats.server_to_client_bytes,
            self.shared.stats.roundtrips,
        )
        return run

    # ------------------------------------------------------------------
    def _step_lane(self, lane: _Lane) -> None:
        """Advance one lane by exactly one schedulable step."""
        if lane.session is None:
            # Admission: open the journal (checkpoint flow mirrors the
            # sequential supervisor's, so outcomes and journals match),
            # run the resume handshake, then the protocol handshake.
            if (
                self.checkpoints is not None
                and self.method.supports_checkpoint
            ):
                from repro.resilience.recovery import attempt_resume

                lane.journal = self.checkpoints.journal(lane.name)
                identity = self.method.checkpoint_identity(lane.old, lane.new)
                lane.journal.open(identity, resume=self.checkpoints.resume)
                lane.resume_state, lane.resume_handshake_bits = attempt_resume(
                    lane.journal, identity, lane.channel
                )
            lane.session = self.method.open_session(
                lane.old, lane.new, checkpointer=lane.journal
            )
            lane.session.start(lane.channel, resume_from=lane.resume_state)
        elif not lane.session.done:
            lane.session.step_round(lane.channel)
        else:
            result = lane.session.finish(lane.channel)
            outcome = wire_outcome(result, lane.new)
            outcome.resume_handshake_bits += lane.resume_handshake_bits
            if lane.resume_state is not None:
                outcome.rounds_salvaged += lane.resume_state.round_index
            if lane.journal is not None:
                outcome.checkpoint_bytes_written += lane.journal.bytes_written
                lane.journal.commit()
            lane.outcome = outcome
            lane.reconstructed = result.reconstructed

    # ------------------------------------------------------------------
    def _flush_wave(self, wave: list[tuple[_Lane, list]]) -> None:
        """Mirror a wave's private-channel traffic onto the shared link."""
        depth = max((len(messages) for _lane, messages in wave), default=0)
        for slot in range(depth):
            present = [
                (lane, messages[slot])
                for lane, messages in wave
                if slot < len(messages)
            ]
            for direction in (
                Direction.CLIENT_TO_SERVER,
                Direction.SERVER_TO_CLIENT,
            ):
                group = [
                    (lane, message)
                    for lane, message in present
                    if message[0] is direction
                ]
                if not group:
                    continue
                subframes = [
                    MuxSubframe(
                        stream_id=lane.stream_id,
                        round_index=lane.channel.current_round,
                        seq=slot,
                        bit_length=bits,
                        payload=payload,
                    )
                    for lane, (_direction, payload, _phase, bits) in group
                ]
                batch = encode_mux_batch(subframes)
                self.shared.send(direction, batch, MUX_PHASE)
                decoded = decode_mux_batch(self.shared.receive(direction))
                if [
                    (sub.stream_id, sub.bit_length, sub.payload)
                    for sub in decoded
                ] != [
                    (sub.stream_id, sub.bit_length, sub.payload)
                    for sub in subframes
                ]:
                    raise ProtocolError(
                        "multiplexed batch did not round-trip bit-identically"
                    )
                self.mux_overhead += mux_overhead_bytes(batch, subframes)
