"""Anti-entropy store scrubbing: audit replicas at rest, repair drift.

The wire protocols defend bytes in flight; nothing so far defended bytes
at *rest*.  A replica that rots on disk — cosmic rays, failing media, a
stray writer — silently diverges from its manifest and will poison every
future delta sync that trusts the local base.  The scrubber closes that
loop:

* :class:`StoreScrubber` walks the manifest in name order, re-reading
  each visible file and checking its :func:`~repro.hashing.strong.file_fingerprint`
  against the recorded one.  Divergent entries are *copied* into the
  ``.repro-quarantine`` directory (evidence preserved) while the rotten
  original stays in place — deliberately, because a mostly-correct file
  is a cheap delta base for the repair sync that follows.
* Scrubbing a large store must not monopolise the disk, so the walk is
  **rate limited** (``rate_limit_bps``) and **resumable**: an optional
  cursor file records the last audited entry so a bounded scrub
  (``max_entries``) continues where the previous one stopped, surviving
  process restarts via the store's atomic-write machinery.
* :meth:`StoreScrubber.repair` turns a scrub report into a surgical
  repair sync: only the divergent and missing entries are fetched, the
  rotten bytes serve as delta bases, and the reconstructed files are
  written back through the crash-safe store.  Any
  :func:`~repro.collection.sync.sync_collection` resilience knob
  (supervisors, fault plans, adaptive retry) passes straight through,
  so a repair can run over the same hostile link that the original
  sync survived.

Everything is deterministic given an injected clock: the default wall
clock and sleep are only reached in real deployments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.collection.manifest import Manifest
from repro.collection.store import CollectionStore, atomic_write_bytes
from repro.hashing.strong import file_fingerprint
from repro.resilience.recovery import quarantine_entry

#: Header line of the persisted scrub cursor (versioned like manifests).
_CURSOR_HEADER = "repro-scrub-cursor v1"


@dataclass
class ScrubReport:
    """What one scrub pass (or slice of a pass) observed and did."""

    root: Path
    #: Entries audited by *this* call (bounded by ``max_entries``).
    scanned: int = 0
    #: Entries whose bytes matched their manifest fingerprint.
    ok: int = 0
    #: Entries present on disk but fingerprint-divergent from the manifest.
    divergent: list[str] = field(default_factory=list)
    #: Manifest entries with no visible file at all.
    missing: list[str] = field(default_factory=list)
    #: Quarantine copies taken of the divergent entries.
    quarantined: list[Path] = field(default_factory=list)
    #: ``True`` when the pass reached the end of the manifest (the cursor
    #: was reset); ``False`` when ``max_entries`` stopped it early.
    completed: bool = False
    #: Bytes re-read from disk for fingerprinting.
    bytes_read: int = 0
    #: Simulated/real seconds slept to honour the rate limit.
    throttle_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.divergent or self.missing)

    @property
    def damaged(self) -> list[str]:
        """Entries a repair sync must fetch, in manifest order."""
        return sorted(set(self.divergent) | set(self.missing))


class StoreScrubber:
    """Audits a :class:`~repro.collection.store.CollectionStore` against
    its manifest, a bounded rate-limited slice at a time.

    ``cursor_path`` makes scrubbing resumable across calls *and* across
    process restarts: the cursor file holds the last audited entry name
    and is written atomically after every slice.  ``rate_limit_bps``
    bounds the audit's read bandwidth in bytes per second (measured
    against ``clock``, enforced via ``sleep`` — both injectable so tests
    and soaks stay deterministic and instant).
    """

    def __init__(
        self,
        store: CollectionStore | str | Path,
        manifest: Manifest,
        cursor_path: str | Path | None = None,
        rate_limit_bps: int | None = None,
        sleep=None,
        clock=None,
    ) -> None:
        if not isinstance(store, CollectionStore):
            store = CollectionStore(store)
        if rate_limit_bps is not None and rate_limit_bps < 1:
            raise ValueError(
                f"rate_limit_bps must be >= 1, got {rate_limit_bps}"
            )
        self.store = store
        self.manifest = manifest
        self.cursor_path = Path(cursor_path) if cursor_path else None
        self.rate_limit_bps = rate_limit_bps
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic

    # ------------------------------------------------------------------
    # Cursor persistence
    # ------------------------------------------------------------------

    def read_cursor(self) -> str | None:
        """Last audited entry name, or ``None`` at the start of a pass."""
        if self.cursor_path is None or not self.cursor_path.is_file():
            return None
        lines = self.cursor_path.read_text().splitlines()
        if not lines or lines[0] != _CURSOR_HEADER:
            return None  # unrecognised cursor: restart the pass
        return lines[1] if len(lines) > 1 and lines[1] else None

    def _write_cursor(self, name: str) -> None:
        if self.cursor_path is not None:
            atomic_write_bytes(
                self.cursor_path, f"{_CURSOR_HEADER}\n{name}\n".encode()
            )

    def _clear_cursor(self) -> None:
        if self.cursor_path is not None:
            self.cursor_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Scrubbing
    # ------------------------------------------------------------------

    def scrub(
        self,
        max_entries: int | None = None,
        quarantine: bool = True,
    ) -> ScrubReport:
        """Audit (a slice of) the store; return what was found.

        Entries are walked in sorted manifest order starting after the
        persisted cursor.  ``max_entries`` bounds how many are audited in
        this call — the cursor then parks at the last one so the next
        call continues the pass.  A pass that reaches the end resets the
        cursor, so the following call starts over.  ``quarantine=False``
        audits without copying evidence (the soak's re-verification
        mode).
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        report = ScrubReport(root=self.store.root)
        cursor = self.read_cursor()
        started = self._clock()
        names = sorted(self.manifest.entries)
        if cursor is not None:
            names = [name for name in names if name > cursor]
        for name in names:
            if max_entries is not None and report.scanned >= max_entries:
                self._write_cursor(cursor)
                return report
            path = self.store.path_for(name)
            report.scanned += 1
            cursor = name
            if not path.is_file():
                report.missing.append(name)
                continue
            data = path.read_bytes()
            report.bytes_read += len(data)
            self._throttle(report, started)
            if file_fingerprint(data) == self.manifest.entries[name]:
                report.ok += 1
            else:
                report.divergent.append(name)
                if quarantine:
                    report.quarantined.append(
                        quarantine_entry(self.store.root, path, copy=True)
                    )
        report.completed = True
        self._clear_cursor()
        return report

    def _throttle(self, report: ScrubReport, started: float) -> None:
        """Sleep long enough that cumulative reads respect the limit."""
        if self.rate_limit_bps is None:
            return
        owed = report.bytes_read / self.rate_limit_bps
        elapsed = self._clock() - started
        if owed > elapsed:
            pause = owed - elapsed
            report.throttle_s += pause
            self._sleep(pause)

    def scrub_all(self, quarantine: bool = True) -> ScrubReport:
        """Run slices until a pass completes; return the merged report."""
        merged = ScrubReport(root=self.store.root)
        while True:
            report = self.scrub(quarantine=quarantine)
            merged.scanned += report.scanned
            merged.ok += report.ok
            merged.divergent.extend(report.divergent)
            merged.missing.extend(report.missing)
            merged.quarantined.extend(report.quarantined)
            merged.bytes_read += report.bytes_read
            merged.throttle_s += report.throttle_s
            if report.completed:
                merged.completed = True
                return merged

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def repair(
        self,
        server_files: dict[str, bytes],
        report: ScrubReport | None = None,
        method=None,
        **sync_kwargs,
    ):
        """Sync the damaged entries back from ``server_files``.

        Only the report's divergent + missing entries travel: divergent
        files keep their rotten on-disk bytes as the delta base (which is
        why :meth:`scrub` quarantines *copies*), missing files arrive as
        compressed full transfers.  The reconstruction is written back
        through the crash-safe store and verified byte-for-byte.

        ``method`` defaults to the multiround protocol (whose surgical
        repair rounds handle any collision the rot may induce);
        ``sync_kwargs`` pass through to
        :func:`~repro.collection.sync.sync_collection` — supervisors,
        fault plans, adaptive retry, everything.
        """
        from repro.collection.sync import sync_collection

        if report is None:
            report = self.scrub_all(quarantine=False)
        if method is None:
            from repro.bench.methods import MultiroundRsyncMethod

            method = MultiroundRsyncMethod()
        damaged = report.damaged
        missing_on_server = [
            name for name in damaged if name not in server_files
        ]
        if missing_on_server:
            raise ValueError(
                "server is missing damaged entries: "
                + ", ".join(missing_on_server[:5])
            )
        client_subset = {
            name: self.store.read_file(name)
            for name in damaged
            if self.store.path_for(name).is_file()
        }
        server_subset = {name: server_files[name] for name in damaged}
        sync_kwargs.setdefault("store", self.store)
        return sync_collection(
            client_subset, server_subset, method, **sync_kwargs
        )
