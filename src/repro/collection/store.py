"""On-disk collection store: manifests and atomically-written replicas.

A real mirror keeps yesterday's fingerprints so the next update can
detect changes without re-reading (or even still having) yesterday's
bytes.  The manifest format is deliberately boring: a versioned header
line, then one ``<hex fingerprint> <name>`` line per file, sorted —
diff-able, greppable, append-friendly.

Everything this module puts on disk is written *atomically*: bytes go to
a ``*.repro.tmp`` sibling, are flushed and fsynced, and only then renamed
over the visible path.  A crash at any instant therefore leaves either
the previous intact version or the new intact version — plus possibly an
orphaned temporary, which the startup sweep
(:func:`repro.resilience.recovery.recover_store`) quarantines.  A torn
*visible* file is impossible.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

from repro.collection.manifest import Manifest
from repro.exceptions import ReproError

_HEADER = "repro-manifest v1"

#: Suffix of in-flight atomic writes.  Distinctive on purpose: the crash
#: sweep may quarantine anything carrying it without risking user files.
TMP_SUFFIX = ".repro.tmp"

#: Fault-injection hook for crash tests: when set to an integer N, the
#: process SIGKILLs itself during its Nth atomic write — after the
#: temporary is durable but *before* the rename, the worst-possible
#: instant for a non-atomic writer.
CRASH_AFTER_WRITES_ENV = "REPRO_CRASH_AFTER_WRITES"
_writes_started = 0


class ManifestFormatError(ReproError):
    """A manifest file could not be parsed."""


def _crash_hook() -> None:
    budget = os.environ.get(CRASH_AFTER_WRITES_ENV)
    if budget is None:
        return
    global _writes_started
    _writes_started += 1
    if _writes_started >= int(budget):
        os.kill(os.getpid(), signal.SIGKILL)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` so a crash can never tear it.

    temp → flush → fsync → rename: the visible path always holds either
    its previous content or ``data`` in full.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + TMP_SUFFIX)
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    _crash_hook()
    os.replace(temp, path)
    return path


class CollectionStore:
    """A replica directory written with crash-safe semantics.

    Entry names are collection-relative paths; anything that would
    escape the root (absolute paths, ``..`` traversal) is rejected.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        relative = Path(name)
        if relative.is_absolute() or ".." in relative.parts:
            raise ValueError(f"entry name escapes the store root: {name!r}")
        return self.root / relative

    def write_file(self, name: str, data: bytes) -> Path:
        """Atomically materialise one reconstructed entry."""
        return atomic_write_bytes(self.path_for(name), data)

    def write_collection(self, files: dict[str, bytes]) -> list[Path]:
        """Materialise many entries (sorted, each one atomic)."""
        return [self.write_file(name, files[name]) for name in sorted(files)]

    def read_file(self, name: str) -> bytes:
        return self.path_for(name).read_bytes()


def save_manifest(manifest: Manifest, path: str | Path) -> Path:
    """Write a manifest to ``path`` (overwrites; atomic)."""
    path = Path(path)
    lines = [_HEADER]
    for name in sorted(manifest.entries):
        if "\n" in name:
            raise ManifestFormatError(f"file name contains newline: {name!r}")
        lines.append(f"{manifest.entries[name].hex()} {name}")
    return atomic_write_bytes(path, ("\n".join(lines) + "\n").encode())


def load_manifest(path: str | Path) -> Manifest:
    """Read a manifest written by :func:`save_manifest`."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ManifestFormatError(f"cannot read {path}: {error}") from error
    lines = text.splitlines()
    if not lines or lines[0] != _HEADER:
        raise ManifestFormatError(f"{path} is not a repro manifest")
    entries: dict[str, bytes] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            fingerprint_hex, name = line.split(" ", 1)
            fingerprint = bytes.fromhex(fingerprint_hex)
        except ValueError as error:
            raise ManifestFormatError(
                f"{path}:{lineno}: malformed entry {line!r}"
            ) from error
        if len(fingerprint) != 16:
            raise ManifestFormatError(
                f"{path}:{lineno}: fingerprint must be 16 bytes"
            )
        if name in entries:
            raise ManifestFormatError(f"{path}:{lineno}: duplicate {name!r}")
        entries[name] = fingerprint
    return Manifest(entries)
