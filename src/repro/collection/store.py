"""On-disk manifest store: stateful change detection for the CLI.

A real mirror keeps yesterday's fingerprints so the next update can
detect changes without re-reading (or even still having) yesterday's
bytes.  The format is deliberately boring: a versioned header line, then
one ``<hex fingerprint> <name>`` line per file, sorted — diff-able,
greppable, append-friendly.
"""

from __future__ import annotations

from pathlib import Path

from repro.collection.manifest import Manifest
from repro.exceptions import ReproError

_HEADER = "repro-manifest v1"


class ManifestFormatError(ReproError):
    """A manifest file could not be parsed."""


def save_manifest(manifest: Manifest, path: str | Path) -> Path:
    """Write a manifest to ``path`` (overwrites)."""
    path = Path(path)
    lines = [_HEADER]
    for name in sorted(manifest.entries):
        if "\n" in name:
            raise ManifestFormatError(f"file name contains newline: {name!r}")
        lines.append(f"{manifest.entries[name].hex()} {name}")
    path.write_text("\n".join(lines) + "\n")
    return path


def load_manifest(path: str | Path) -> Manifest:
    """Read a manifest written by :func:`save_manifest`."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ManifestFormatError(f"cannot read {path}: {error}") from error
    lines = text.splitlines()
    if not lines or lines[0] != _HEADER:
        raise ManifestFormatError(f"{path} is not a repro manifest")
    entries: dict[str, bytes] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            fingerprint_hex, name = line.split(" ", 1)
            fingerprint = bytes.fromhex(fingerprint_hex)
        except ValueError as error:
            raise ManifestFormatError(
                f"{path}:{lineno}: malformed entry {line!r}"
            ) from error
        if len(fingerprint) != 16:
            raise ManifestFormatError(
                f"{path}:{lineno}: fingerprint must be 16 bytes"
            )
        if name in entries:
            raise ManifestFormatError(f"{path}:{lineno}: duplicate {name!r}")
        entries[name] = fingerprint
    return Manifest(entries)
