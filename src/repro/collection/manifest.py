"""File manifests: name → 16-byte fingerprint.

"We do not focus on this aspect and instead use a fingerprint for each
file as this is efficient enough for our data sets" — the manifest is that
fingerprint exchange, and its wire cost is charged to every method
equally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hashing.strong import file_fingerprint


@dataclass
class Manifest:
    """Fingerprints of one collection snapshot."""

    entries: dict[str, bytes] = field(default_factory=dict)

    @classmethod
    def of_collection(cls, files: dict[str, bytes]) -> "Manifest":
        return cls({name: file_fingerprint(data) for name, data in files.items()})

    def wire_bytes(self) -> int:
        """Serialized size: each entry is its UTF-8 name, a NUL, and the
        16-byte fingerprint."""
        return sum(len(name.encode()) + 1 + 16 for name in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class ManifestDiff:
    """What a client must do to catch up with the server."""

    unchanged: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)  # only on the server
    removed: list[str] = field(default_factory=list)  # only on the client


def diff_manifests(client: Manifest, server: Manifest) -> ManifestDiff:
    """Classify every file name across the two snapshots."""
    diff = ManifestDiff()
    for name in sorted(server.entries):
        if name not in client.entries:
            diff.added.append(name)
        elif client.entries[name] == server.entries[name]:
            diff.unchanged.append(name)
        else:
            diff.changed.append(name)
    diff.removed = sorted(set(client.entries) - set(server.entries))
    return diff
