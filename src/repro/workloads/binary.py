"""Additional workload families: logs, binary blobs, record stores.

The paper's collections are source trees and web pages; real deployments
(remote backup, mirroring) also move append-mostly logs, incompressible
binaries, and record-structured dumps.  These generators round out the
robustness matrix the bench harness sweeps:

* **logs** — append-dominated with occasional rotation (drop a prefix):
  the friendliest case for any block-matching scheme;
* **binary** — incompressible blobs with a few localized patches: the
  delta still wins but nobody gets help from entropy coding;
* **records** — fixed-ish records where a subset is updated in place and
  a few are inserted/deleted, shifting alignment mid-file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class VersionedFile:
    """An (old, new) pair plus the generator's ground truth."""

    name: str
    old: bytes
    new: bytes
    description: str


def _log_line(rng: random.Random, tick: int) -> bytes:
    level = rng.choice((b"INFO", b"WARN", b"ERROR", b"DEBUG"))
    component = rng.choice(
        (b"net", b"db", b"auth", b"cache", b"sched", b"io")
    )
    message = bytes(
        rng.choice(b"abcdefghijklmnopqrstuvwxyz ")
        for _ in range(rng.randrange(20, 60))
    )
    return b"2026-07-%02d %s [%s] %s" % (
        tick % 28 + 1,
        level,
        component,
        message,
    )


def make_log_pair(
    seed: int = 0,
    base_lines: int = 800,
    appended_lines: int = 120,
    rotate_fraction: float = 0.0,
) -> VersionedFile:
    """An append-mostly log; ``rotate_fraction`` drops that share of the
    oldest lines in the new version (log rotation)."""
    if base_lines < 1 or appended_lines < 0:
        raise WorkloadError("need base_lines >= 1 and appended_lines >= 0")
    if not 0.0 <= rotate_fraction < 1.0:
        raise WorkloadError("rotate_fraction must be in [0, 1)")
    rng = random.Random(seed)
    lines = [_log_line(rng, i) for i in range(base_lines)]
    old = b"\n".join(lines) + b"\n"
    kept = lines[int(len(lines) * rotate_fraction) :]
    kept += [_log_line(rng, base_lines + i) for i in range(appended_lines)]
    new = b"\n".join(kept) + b"\n"
    return VersionedFile(
        name="app.log",
        old=old,
        new=new,
        description=(
            f"{appended_lines} lines appended, "
            f"{rotate_fraction:.0%} rotated away"
        ),
    )


def make_binary_pair(
    seed: int = 0,
    size: int = 100_000,
    patch_count: int = 4,
    patch_size: int = 900,
) -> VersionedFile:
    """An incompressible blob with a few same-size in-place patches."""
    if size < 1 or patch_count < 0 or patch_size < 1:
        raise WorkloadError("invalid binary workload parameters")
    rng = random.Random(seed)
    old = bytes(rng.randrange(256) for _ in range(size))
    new = bytearray(old)
    for _ in range(patch_count):
        if size <= patch_size:
            break
        position = rng.randrange(size - patch_size)
        new[position : position + patch_size] = bytes(
            rng.randrange(256) for _ in range(patch_size)
        )
    return VersionedFile(
        name="firmware.bin",
        old=old,
        new=bytes(new),
        description=f"{patch_count} x {patch_size} B in-place patches",
    )


def make_record_store_pair(
    seed: int = 0,
    record_count: int = 600,
    record_size: int = 96,
    updated_fraction: float = 0.05,
    inserted: int = 6,
    deleted: int = 4,
) -> VersionedFile:
    """A record-structured dump with updates, inserts and deletes.

    Inserts and deletes shift the alignment of every following record —
    the case the paper singles out as defeating fixed-boundary schemes.
    """
    if record_count < 1 or record_size < 8:
        raise WorkloadError("need record_count >= 1 and record_size >= 8")
    if not 0.0 <= updated_fraction <= 1.0:
        raise WorkloadError("updated_fraction must be in [0, 1]")
    rng = random.Random(seed)

    def record(key: int) -> bytes:
        payload = bytes(
            rng.choice(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789")
            for _ in range(record_size - 12)
        )
        return b"K%08d:" % key + payload + b";\n"

    records = [record(i) for i in range(record_count)]
    old = b"".join(records)

    new_records = list(records)
    updated = rng.sample(
        range(record_count), int(record_count * updated_fraction)
    )
    for index in updated:
        new_records[index] = record(index)
    for _ in range(min(deleted, len(new_records) - 1)):
        del new_records[rng.randrange(len(new_records))]
    for i in range(inserted):
        new_records.insert(
            rng.randrange(len(new_records) + 1), record(record_count + i)
        )
    return VersionedFile(
        name="store.db",
        old=old,
        new=b"".join(new_records),
        description=(
            f"{len(updated)} updated, {inserted} inserted, {deleted} deleted"
        ),
    )


def robustness_suite(seed: int = 0) -> list[VersionedFile]:
    """The workload matrix swept by the robustness benchmark."""
    return [
        make_log_pair(seed=seed),
        make_log_pair(seed=seed + 1, rotate_fraction=0.3),
        make_binary_pair(seed=seed + 2),
        make_record_store_pair(seed=seed + 3),
    ]
