"""Deterministic generators for source-code-like and HTML-like content.

Real source files and web pages are highly compressible (shared
identifiers, indentation, boilerplate), which matters for every method we
benchmark: rsync compresses its literal stream, the delta coders entropy-
code theirs.  Pure random bytes would flatten those effects and distort
all the comparisons, so the generators produce token streams with a
realistic amount of repetition.
"""

from __future__ import annotations

import random

_KEYWORDS = (
    "if",
    "else",
    "for",
    "while",
    "return",
    "break",
    "continue",
    "static",
    "const",
    "struct",
    "int",
    "char",
    "void",
    "unsigned",
    "sizeof",
    "switch",
    "case",
    "default",
    "typedef",
    "extern",
)

_OPERATORS = ("=", "==", "!=", "<", ">", "<=", ">=", "+", "-", "*", "&&", "||")


def _make_identifier(rng: random.Random) -> str:
    syllables = ("get", "set", "buf", "len", "ptr", "idx", "tmp", "max", "min",
                 "node", "list", "hash", "key", "val", "str", "num", "pos",
                 "ctx", "cfg", "arg", "out", "err", "res", "cur", "next")
    parts = [rng.choice(syllables) for _ in range(rng.randrange(1, 4))]
    return "_".join(parts)


class TextGenerator:
    """Source-code-flavoured text with a per-collection vocabulary.

    Two generators with the same seed produce identical output; content
    functions derived from one are used both for whole files and for the
    replacement text of edits, so edited regions look like the rest of
    the file (as they do in real version pairs).
    """

    def __init__(self, seed: int, vocabulary_size: int = 300) -> None:
        if vocabulary_size < 10:
            raise ValueError("vocabulary_size must be at least 10")
        rng = random.Random(seed)
        self._identifiers = sorted(
            {_make_identifier(rng) for _ in range(vocabulary_size)}
        )

    def _line(self, rng: random.Random, indent: int) -> str:
        pad = "    " * indent
        roll = rng.random()
        ident = rng.choice(self._identifiers)
        other = rng.choice(self._identifiers)
        if roll < 0.15:
            return f"{pad}{rng.choice(_KEYWORDS)} ({ident} {rng.choice(_OPERATORS)} {other}) {{"
        if roll < 0.30:
            return f"{pad}{rng.choice(('int', 'char *', 'unsigned', 'struct'))} {ident} = {rng.randrange(0, 4096)};"
        if roll < 0.45:
            return f"{pad}{ident} = {other}({ident}, {rng.randrange(0, 64)});"
        if roll < 0.55:
            return f"{pad}/* {ident} {other} */"
        if roll < 0.65:
            return f"{pad}return {ident};"
        if roll < 0.75:
            return f"{pad}}}"
        return f"{pad}{ident}->{other} = {rng.choice(self._identifiers)};"

    def generate(self, nbytes: int, rng: random.Random) -> bytes:
        """About ``nbytes`` of code-like text (never shorter)."""
        lines = []
        size = 0
        indent = 0
        while size <= nbytes:
            if rng.random() < 0.08:
                line = f"\nstatic int {rng.choice(self._identifiers)}(void) {{"
                indent = 1
            else:
                line = self._line(rng, indent)
                if line.endswith("{"):
                    indent = min(indent + 1, 4)
                elif line.strip() == "}":
                    indent = max(indent - 1, 0)
            lines.append(line)
            size += len(line) + 1
        return ("\n".join(lines) + "\n").encode()

    def snippet(self, rng: random.Random, nbytes: int) -> bytes:
        """Replacement content for edits (same statistical texture)."""
        return self.generate(max(nbytes, 1), rng)[:nbytes]


class HtmlGenerator:
    """HTML-ish pages sharing per-site boilerplate.

    Pages within a "site" share a template (header, nav, footer), so
    different pages of one site are similar but not identical — mirroring
    the structure of a real crawled collection.
    """

    def __init__(self, seed: int, sites: int = 12) -> None:
        if sites < 1:
            raise ValueError("sites must be positive")
        rng = random.Random(seed)
        self._text = TextGenerator(seed ^ 0xBEEF, vocabulary_size=200)
        words = [
            "".join(rng.choice("aeioubcdfghlmnprstv") for _ in range(rng.randrange(3, 9)))
            for _ in range(500)
        ]
        self._words = words
        self._templates = []
        for site in range(sites):
            nav = " | ".join(
                f'<a href="/{rng.choice(words)}">{rng.choice(words)}</a>'
                for _ in range(8)
            )
            self._templates.append(
                (
                    f"<html><head><title>site-{site}</title></head><body>"
                    f'<div class="nav">{nav}</div>\n',
                    f'<div class="footer">copyright site-{site} | '
                    f"{' '.join(rng.choice(words) for _ in range(12))}</div>"
                    "</body></html>\n",
                )
            )

    @property
    def site_count(self) -> int:
        return len(self._templates)

    def _paragraph(self, rng: random.Random) -> str:
        sentence_count = rng.randrange(2, 6)
        sentences = []
        for _ in range(sentence_count):
            length = rng.randrange(6, 18)
            sentences.append(
                " ".join(rng.choice(self._words) for _ in range(length)) + "."
            )
        return "<p>" + " ".join(sentences) + "</p>"

    def generate(self, nbytes: int, rng: random.Random, site: int | None = None) -> bytes:
        """About ``nbytes`` of page content for the given (or random) site."""
        if site is None:
            site = rng.randrange(len(self._templates))
        header, footer = self._templates[site % len(self._templates)]
        body = []
        size = len(header) + len(footer)
        while size <= nbytes:
            paragraph = self._paragraph(rng)
            body.append(paragraph)
            size += len(paragraph) + 1
        return (header + "\n".join(body) + footer).encode()

    def snippet(self, rng: random.Random, nbytes: int) -> bytes:
        """Replacement content for page edits."""
        raw = self._paragraph(rng)
        while len(raw) < nbytes:
            raw += " " + self._paragraph(rng)
        return raw[:nbytes].encode()
