"""Fleet workload: many stale clients pulling one updated collection.

The cross-file reuse layer (DESIGN.md §17) only pays off when the same
server version is broadcast to *many* clients: the first client's deltas
prime the memo cache, every later client replays them for free, and
clients missing files entirely can bootstrap from similar siblings they
already hold.  This generator produces that shape deterministically — a
version chain of one collection plus a fleet of clients pinned at mixed
staleness, some with files dropped so the sibling-reference path has
work to do.

Structural knobs mirror the paper's broadcast scenario (one server, a
population of mirrors on slow links) rather than any specific data set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import WorkloadError
from repro.workloads.mutate import EditProfile, mutate
from repro.workloads.text import TextGenerator

#: Version-step edit model: clustered, alignment-shifting edits as in
#: the source-tree workloads, scaled for ~4 KB files.
DEFAULT_FLEET_PROFILE = EditProfile(
    edit_count=6,
    cluster_count=2,
    cluster_spread=120.0,
    min_size=4,
    max_size=96,
)


@dataclass(frozen=True)
class FleetClient:
    """One stale replica: its name, pinned version, and file state."""

    name: str
    version: int
    files: dict[str, bytes] = field(default_factory=dict)


@dataclass(frozen=True)
class FleetWorkload:
    """A version chain plus a fleet of clients at mixed staleness."""

    versions: list[dict[str, bytes]]
    clients: list[FleetClient]

    @property
    def server(self) -> dict[str, bytes]:
        """The current collection every client is pulling."""
        return self.versions[-1]

    @property
    def client_count(self) -> int:
        return len(self.clients)


def make_fleet(
    clients: int = 8,
    files: int = 12,
    versions: int = 4,
    seed: int = 0,
    mean_size: int = 4096,
    change_fraction: float = 0.6,
    missing_fraction: float = 0.15,
    profile: EditProfile | None = None,
) -> FleetWorkload:
    """Build a deterministic fleet workload.

    Every third file is minted as a near-copy of the previous "template"
    file, so the collection contains genuinely similar siblings — the
    structure the min-hash index exploits when a client is missing a
    file.  Each version step mutates roughly ``change_fraction`` of the
    files and appends one new file, so even a client at version
    ``versions - 2`` sees both changed and added files.  Clients are
    pinned at uniformly-drawn stale versions and drop roughly
    ``missing_fraction`` of their files.

    The same arguments always produce byte-identical output.
    """
    if clients < 1:
        raise WorkloadError("need at least one client")
    if files < 2:
        raise WorkloadError("need at least two files")
    if versions < 2:
        raise WorkloadError("need at least two versions")
    if not 0.0 <= change_fraction <= 1.0:
        raise WorkloadError("change_fraction must be in [0, 1]")
    if not 0.0 <= missing_fraction < 1.0:
        raise WorkloadError("missing_fraction must be in [0, 1)")
    if profile is None:
        profile = DEFAULT_FLEET_PROFILE

    rng = random.Random(seed)
    generator = TextGenerator(seed=seed * 7919 + 11)
    sibling_profile = EditProfile(
        edit_count=4,
        cluster_count=2,
        cluster_spread=150.0,
        min_size=4,
        max_size=64,
    )

    # Version 0: fresh files, every third one a near-copy of the last
    # template so similar siblings exist from the start.
    base: dict[str, bytes] = {}
    template: bytes | None = None
    for index in range(files):
        name = f"src/file{index:03d}.c"
        size = int(mean_size * (0.5 + 1.5 * rng.random()))
        if index % 3 == 2 and template is not None:
            base[name] = mutate(
                template, rng, sibling_profile, content=generator.snippet
            )
        else:
            base[name] = generator.generate(size, rng)
            template = base[name]

    chain = [base]
    for step in range(1, versions):
        previous = chain[-1]
        current: dict[str, bytes] = {}
        for name in sorted(previous):
            data = previous[name]
            if rng.random() < change_fraction:
                data = mutate(data, rng, profile, content=generator.snippet)
            current[name] = data
        # One genuinely new file per step, cloned from a random existing
        # file so sibling references have something to bite on.
        donor = current[rng.choice(sorted(current))]
        added_name = f"src/added{step:03d}.c"
        current[added_name] = mutate(
            donor, rng, sibling_profile, content=generator.snippet
        )
        chain.append(current)

    fleet: list[FleetClient] = []
    for index in range(clients):
        version = rng.randrange(0, versions - 1)
        state = dict(chain[version])
        for name in sorted(state):
            if len(state) > 1 and rng.random() < missing_fraction:
                del state[name]
        fleet.append(
            FleetClient(name=f"client{index:03d}", version=version, files=state)
        )

    return FleetWorkload(versions=chain, clients=fleet)
