"""Edit models: turn one file version into the next.

The paper stresses that real modifications include *insertions and
deletions that change byte alignments* (defeating fixed-block schemes)
and that changes are usually *clustered* in a few areas of the file
(which is what makes rsync workable at all).  Both properties are
first-class knobs here.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import WorkloadError

ContentFn = Callable[[random.Random, int], bytes]


def _default_content(rng: random.Random, nbytes: int) -> bytes:
    return bytes(rng.randrange(97, 123) for _ in range(nbytes))


@dataclass(frozen=True)
class EditProfile:
    """Statistical description of one version step.

    Parameters
    ----------
    edit_count:
        Number of individual edit operations.
    cluster_count:
        Edits are placed around this many cluster centres (``None`` means
        fully dispersed, i.e. uniform positions).
    cluster_spread:
        Standard deviation (bytes) of edit positions around their centre.
    insert_weight / delete_weight / replace_weight:
        Relative frequencies of the three operation types.
    min_size / max_size:
        Operation sizes are drawn log-uniformly from this range, giving
        the heavy-ish tail observed for real edits.
    """

    edit_count: int
    cluster_count: int | None = 3
    cluster_spread: float = 200.0
    insert_weight: float = 1.0
    delete_weight: float = 1.0
    replace_weight: float = 2.0
    min_size: int = 4
    max_size: int = 120

    def __post_init__(self) -> None:
        if self.edit_count < 0:
            raise WorkloadError("edit_count must be non-negative")
        if self.cluster_count is not None and self.cluster_count < 1:
            raise WorkloadError("cluster_count must be positive or None")
        if self.min_size < 1 or self.max_size < self.min_size:
            raise WorkloadError("need 1 <= min_size <= max_size")
        total = self.insert_weight + self.delete_weight + self.replace_weight
        if total <= 0:
            raise WorkloadError("at least one operation weight must be positive")


def _draw_size(rng: random.Random, profile: EditProfile) -> int:
    """Log-uniform size in ``[min_size, max_size]``."""
    import math

    low = math.log(profile.min_size)
    high = math.log(profile.max_size)
    return max(profile.min_size, min(profile.max_size, round(math.exp(rng.uniform(low, high)))))


def _draw_positions(
    rng: random.Random, profile: EditProfile, length: int
) -> list[int]:
    if length == 0:
        return [0] * profile.edit_count
    if profile.cluster_count is None:
        return [rng.randrange(length) for _ in range(profile.edit_count)]
    centres = [rng.randrange(length) for _ in range(profile.cluster_count)]
    positions = []
    for _ in range(profile.edit_count):
        centre = rng.choice(centres)
        offset = rng.gauss(0.0, profile.cluster_spread)
        positions.append(int(max(0, min(length - 1, centre + offset))))
    return positions


def mutate(
    data: bytes,
    rng: random.Random,
    profile: EditProfile,
    content: ContentFn | None = None,
) -> bytes:
    """Apply one version step to ``data``.

    Edits are applied right-to-left so earlier positions stay valid.
    ``content`` generates inserted/replacement bytes; by default random
    lowercase letters, but workloads pass their own generator so edits
    match the file's texture.
    """
    if content is None:
        content = _default_content
    if profile.edit_count == 0:
        return data

    weights = (profile.insert_weight, profile.delete_weight, profile.replace_weight)
    result = bytearray(data)
    positions = sorted(_draw_positions(rng, profile, len(data)), reverse=True)
    for position in positions:
        size = _draw_size(rng, profile)
        operation = rng.choices(("insert", "delete", "replace"), weights=weights)[0]
        if operation == "insert" or not result:
            result[position:position] = content(rng, size)
        elif operation == "delete":
            del result[position : position + size]
        else:
            replacement_length = max(
                1, size + rng.randrange(-size // 3 - 1, size // 3 + 2)
            )
            result[position : position + size] = content(rng, replacement_length)
    return bytes(result)
