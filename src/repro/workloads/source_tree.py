"""Versioned source-tree collections (the gcc/emacs stand-ins).

The paper's first benchmark data sets are consecutive releases of gcc
(2.7.0 → 2.7.1, ~1000 files) and emacs (19.28 → 19.29, ~1290 files), each
around 27 MB.  A point release touches most files lightly (version
strings, copyright years, small fixes), rewrites a handful heavily, and
adds/removes a few — that structure is what the generator reproduces,
scaled down via ``scale`` (1.0 ≈ 2 MB; raise it if you have the minutes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.exceptions import WorkloadError
from repro.workloads.mutate import EditProfile, mutate
from repro.workloads.text import TextGenerator


@dataclass(frozen=True)
class SourceTreeProfile:
    """Shape of a release-to-release change."""

    name: str
    file_count: int
    mean_file_size: int = 8192
    size_sigma: float = 1.0  # lognormal spread
    unchanged_fraction: float = 0.30
    lightly_edited_fraction: float = 0.55  # small clustered edits
    heavy_rewrite_fraction: float = 0.10  # substantial restructuring
    added_fraction: float = 0.03  # brand-new files in the new release
    removed_fraction: float = 0.02  # files dropped from the old release
    light_edits_per_kb: float = 0.4
    heavy_edits_per_kb: float = 4.0

    def __post_init__(self) -> None:
        if self.file_count < 1:
            raise WorkloadError("file_count must be positive")
        fractions = (
            self.unchanged_fraction
            + self.lightly_edited_fraction
            + self.heavy_rewrite_fraction
            + self.added_fraction
        )
        if fractions > 1.0 + 1e-9:
            raise WorkloadError("file-category fractions exceed 1.0")


@dataclass
class SourceTreeVersions:
    """An (old, new) pair of file collections."""

    name: str
    old: dict[str, bytes] = field(default_factory=dict)
    new: dict[str, bytes] = field(default_factory=dict)

    @property
    def old_bytes(self) -> int:
        return sum(len(v) for v in self.old.values())

    @property
    def new_bytes(self) -> int:
        return sum(len(v) for v in self.new.values())

    def common_names(self) -> list[str]:
        return sorted(set(self.old) & set(self.new))


def _draw_file_size(rng: random.Random, profile: SourceTreeProfile) -> int:
    mu = math.log(profile.mean_file_size) - profile.size_sigma**2 / 2
    return max(256, int(rng.lognormvariate(mu, profile.size_sigma)))


def make_source_tree(
    profile: SourceTreeProfile, seed: int = 0
) -> SourceTreeVersions:
    """Generate the old release and derive the new one from it."""
    rng = random.Random(seed)
    text = TextGenerator(seed ^ 0xC0DE)
    versions = SourceTreeVersions(name=profile.name)

    names = [
        f"src/{rng.choice(('core', 'lib', 'util', 'io', 'net'))}/file{i:04d}.c"
        for i in range(profile.file_count)
    ]
    for name in names:
        versions.old[name] = text.generate(_draw_file_size(rng, profile), rng)

    shuffled = list(names)
    rng.shuffle(shuffled)
    cursor = 0

    def take(fraction: float) -> list[str]:
        nonlocal cursor
        count = int(round(fraction * profile.file_count))
        chunk = shuffled[cursor : cursor + count]
        cursor += count
        return chunk

    removed = set(take(profile.removed_fraction))
    heavy = take(profile.heavy_rewrite_fraction)
    light = take(profile.lightly_edited_fraction)
    # Everything else (including the explicit unchanged fraction) is copied.

    for name in names:
        if name in removed:
            continue
        data = versions.old[name]
        if name in heavy:
            edit_count = max(3, int(len(data) / 1024 * profile.heavy_edits_per_kb))
            profile_edits = EditProfile(
                edit_count=edit_count,
                cluster_count=max(2, edit_count // 4),
                cluster_spread=400.0,
                min_size=8,
                max_size=600,
            )
            data = mutate(data, rng, profile_edits, content=text.snippet)
        elif name in light:
            edit_count = max(1, int(len(data) / 1024 * profile.light_edits_per_kb))
            profile_edits = EditProfile(
                edit_count=edit_count,
                cluster_count=2,
                cluster_spread=150.0,
                min_size=4,
                max_size=80,
            )
            data = mutate(data, rng, profile_edits, content=text.snippet)
        versions.new[name] = data

    added_count = int(round(profile.added_fraction * profile.file_count))
    for i in range(added_count):
        name = f"src/new/file{i:04d}.c"
        versions.new[name] = text.generate(_draw_file_size(rng, profile), rng)
    return versions


def gcc_like(scale: float = 1.0, seed: int = 0) -> SourceTreeVersions:
    """A gcc-2.7.0→2.7.1-shaped release pair.

    ``scale=1.0`` gives ~250 files / ~2 MB; the real data set is ~11×
    larger with the same structure.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    profile = SourceTreeProfile(
        name="gcc-like",
        file_count=max(10, int(250 * scale)),
        unchanged_fraction=0.25,
        lightly_edited_fraction=0.58,
        heavy_rewrite_fraction=0.12,
    )
    return make_source_tree(profile, seed=seed)


def emacs_like(scale: float = 1.0, seed: int = 1) -> SourceTreeVersions:
    """An emacs-19.28→19.29-shaped release pair (closer versions: more
    unchanged files, lighter edits, slightly more files)."""
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    profile = SourceTreeProfile(
        name="emacs-like",
        file_count=max(10, int(320 * scale)),
        mean_file_size=7168,
        unchanged_fraction=0.45,
        lightly_edited_fraction=0.45,
        heavy_rewrite_fraction=0.05,
        added_fraction=0.02,
        removed_fraction=0.01,
        light_edits_per_kb=0.3,
    )
    return make_source_tree(profile, seed=seed)
