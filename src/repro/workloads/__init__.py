"""Synthetic workloads mirroring the paper's evaluation data sets.

The original evaluation used the gcc 2.7.0→2.7.1 and emacs 19.28→19.29
source trees plus ten thousand web pages recrawled nightly during Fall
2001 — none of which are available offline.  These generators produce
deterministic, seeded collections whose *edit structure* (fraction of
files changed, clustered local edits, alignment-shifting insertions and
deletions, heavy-tailed file sizes) mirrors those data sets, scaled so a
pure-Python prototype can sweep the full parameter grid in seconds.  See
DESIGN.md §3 for the substitution rationale.
"""

from repro.workloads.binary import (
    VersionedFile,
    make_binary_pair,
    make_log_pair,
    make_record_store_pair,
    robustness_suite,
)
from repro.workloads.fleet import (
    DEFAULT_FLEET_PROFILE,
    FleetClient,
    FleetWorkload,
    make_fleet,
)
from repro.workloads.mutate import EditProfile, mutate
from repro.workloads.source_tree import (
    SourceTreeVersions,
    emacs_like,
    gcc_like,
    make_source_tree,
)
from repro.workloads.text import HtmlGenerator, TextGenerator
from repro.workloads.web import WebCollection, make_web_collection

__all__ = [
    "DEFAULT_FLEET_PROFILE",
    "EditProfile",
    "FleetClient",
    "FleetWorkload",
    "VersionedFile",
    "make_fleet",
    "make_binary_pair",
    "make_log_pair",
    "make_record_store_pair",
    "robustness_suite",
    "HtmlGenerator",
    "SourceTreeVersions",
    "TextGenerator",
    "WebCollection",
    "emacs_like",
    "gcc_like",
    "make_source_tree",
    "make_web_collection",
    "mutate",
]
