"""The recrawled web-page collection (Table 6.2's workload).

The paper's set: ten thousand pages sampled from large crawls, recrawled
nightly; snapshots at gaps of 1, 2 and 7 days; ~10 KB mean page size and
~100 MB per snapshot; many pages unchanged between crawls, the rest
changed slightly.  The generator simulates the crawl process day by day:
each page has a per-page daily change probability drawn from a
hot/warm/cold mixture (a few pages churn daily, most rarely change), and
a change applies a handful of small, local edits.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.exceptions import WorkloadError
from repro.workloads.mutate import EditProfile, mutate
from repro.workloads.text import HtmlGenerator

#: (fraction of pages, daily change probability) — hot news-like pages,
#: warm pages, and the cold long tail.
CHANGE_MIXTURE: tuple[tuple[float, float], ...] = (
    (0.15, 0.85),
    (0.30, 0.20),
    (0.55, 0.03),
)


@dataclass
class WebCollection:
    """Snapshots of a page population indexed by crawl day."""

    page_count: int
    snapshots: dict[int, dict[str, bytes]] = field(default_factory=dict)
    change_rates: dict[str, float] = field(default_factory=dict)

    def snapshot(self, day: int) -> dict[str, bytes]:
        try:
            return self.snapshots[day]
        except KeyError:
            raise WorkloadError(
                f"no snapshot for day {day}; have {sorted(self.snapshots)}"
            ) from None

    def snapshot_bytes(self, day: int) -> int:
        return sum(len(v) for v in self.snapshot(day).values())

    def changed_pages(self, day_a: int, day_b: int) -> int:
        """Pages whose content differs between two snapshot days."""
        a, b = self.snapshot(day_a), self.snapshot(day_b)
        return sum(1 for name in a if a[name] != b.get(name))


def _draw_change_rate(rng: random.Random) -> float:
    roll = rng.random()
    cumulative = 0.0
    for fraction, rate in CHANGE_MIXTURE:
        cumulative += fraction
        if roll < cumulative:
            return rate
    return CHANGE_MIXTURE[-1][1]


def _draw_page_size(rng: random.Random, mean_size: int) -> int:
    sigma = 0.7
    mu = math.log(mean_size) - sigma**2 / 2
    return max(1024, int(rng.lognormvariate(mu, sigma)))


def make_web_collection(
    page_count: int = 150,
    days: tuple[int, ...] = (0, 1, 2, 7),
    mean_page_size: int = 10240,
    seed: int = 0,
) -> WebCollection:
    """Simulate the crawl: base snapshot at day 0, then daily evolution.

    Snapshots are cumulative — the day-7 snapshot is the result of seven
    daily mutation steps, so longer gaps mean strictly more divergence,
    exactly like the paper's update-frequency sweep.
    """
    if page_count < 1:
        raise WorkloadError("page_count must be positive")
    if not days or days[0] != 0 or list(days) != sorted(set(days)):
        raise WorkloadError("days must be sorted, unique, and start at 0")

    rng = random.Random(seed)
    html = HtmlGenerator(seed ^ 0xFACE)
    collection = WebCollection(page_count=page_count)

    current: dict[str, bytes] = {}
    for i in range(page_count):
        name = f"page{i:05d}.html"
        site = i % html.site_count
        current[name] = html.generate(_draw_page_size(rng, mean_page_size), rng, site)
        collection.change_rates[name] = _draw_change_rate(rng)
    collection.snapshots[0] = dict(current)

    max_day = max(days)
    wanted = set(days)
    for day in range(1, max_day + 1):
        for name in sorted(current):
            if rng.random() >= collection.change_rates[name]:
                continue
            edit_count = rng.randrange(1, 5)
            profile = EditProfile(
                edit_count=edit_count,
                cluster_count=1,
                cluster_spread=120.0,
                min_size=8,
                max_size=250,
                insert_weight=1.0,
                delete_weight=1.0,
                replace_weight=3.0,
            )
            current[name] = mutate(current[name], rng, profile, content=html.snippet)
        if day in wanted:
            collection.snapshots[day] = dict(current)
    return collection
