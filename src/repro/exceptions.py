"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A synchronization protocol received a malformed or unexpected message."""


class SyncStalledError(ProtocolError):
    """A session exceeded its round circuit without converging.

    Multi-round protocols normally converge in ``O(log(file size))``
    rounds; adversarial corruption of MAP frames (or a bug) can instead
    keep the frontier alive forever.  The round circuit turns that
    unbounded loop into a typed, recoverable failure the supervisor can
    route to a coarser ladder rung.
    """


class ChannelClosedError(ReproError):
    """An endpoint attempted to use a channel that has been closed."""


class ChannelEmptyError(ChannelClosedError):
    """A receive found no pending message in the requested direction.

    Historically the channel raised :class:`ChannelClosedError` for this
    case even when the channel was open; the subclass keeps existing
    ``except ChannelClosedError`` handlers working while letting new code
    distinguish "nothing arrived" (a dropped message, a protocol running
    ahead of its peer) from "the link is gone".
    """


class FrameCorruptionError(ReproError):
    """A framed message failed its length or CRC32 check.

    Raised at the receiving end of a checksummed channel
    (:mod:`repro.net.frame`) when bit-flips or truncation mangled a frame
    in flight.  Recoverable: the supervisor retries the round.
    """


class DeltaFormatError(ReproError):
    """A delta stream could not be decoded."""


class IntegrityError(ReproError):
    """A reconstructed file failed its whole-file checksum.

    The protocols detect (extremely unlikely) hash-collision failures with a
    strong whole-file checksum; this error signals that the fallback path
    (full transfer) had to be taken or that decoding produced bad data.

    Unqualified, this means *decode corruption*: the bytes are wrong for a
    reason no protocol retry can cure (a beaten rung — the ladder should
    descend).  The repairable flavour is :class:`ChecksumMismatchError`.
    """


class ChecksumMismatchError(IntegrityError):
    """A reconstruction diverged from the expected fingerprint but is
    structurally sound — the signature of a weak-hash block collision.

    Unlike its parent (decode corruption: the rung is beaten), this is
    *recoverable in place*: the divergence is localized to a handful of
    blocks that a surgical repair round (or, at worst, one full transfer
    on the same rung) can fix.  ``classify_failure`` routes it as
    repair-now rather than ladder-descend.
    """


class ConfigError(ReproError):
    """A protocol or workload configuration is invalid."""


class WorkloadError(ReproError):
    """A synthetic workload could not be generated as requested."""


class ResumeRefusedError(ReproError):
    """A resumable run was requested but cannot be honoured.

    Raised when ``resume=True`` is asked for without a durable checkpoint
    location to resume *from* — silently starting over would hide exactly
    the restart cost the caller tried to avoid.
    """


class SyncFailedError(ReproError):
    """Every rung of the resilience ladder failed for one file.

    Carries the retry/fallback history so callers (and per-file error
    isolation in the collection layer) can report what was attempted.
    ``partial`` (when set) is a :class:`~repro.syncmethod.MethodOutcome`
    with ``correct=False`` carrying the accounting of the doomed attempts
    — retransmission, backoff, salvaged rounds — so a captured failure
    still shows up in collection-level counters instead of vanishing.
    """

    def __init__(self, message: str, attempts: int = 0,
                 history: tuple[str, ...] = (),
                 partial=None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.history = history
        self.partial = partial


class DeadlineExceededError(SyncFailedError):
    """A file (or run) deadline budget ran out before the sync completed.

    Raised by the supervisor *between* attempts — never mid-attempt — so
    any durable checkpoints stay intact for a later resume.  The
    ``partial`` outcome records what the expired attempts cost and how
    many checkpointed rounds were salvaged for the future.
    """


class CircuitOpenError(SyncFailedError):
    """A per-file circuit breaker refused the attempt.

    After ``failure_threshold`` consecutive failures the breaker opens
    and fails fast for a cooldown period (simulated time), so one
    poisoned file cannot consume the run's retry budget.  A half-open
    probe is admitted once the cooldown elapses.
    """
