"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A synchronization protocol received a malformed or unexpected message."""


class ChannelClosedError(ReproError):
    """An endpoint attempted to use a channel that has been closed."""


class ChannelEmptyError(ChannelClosedError):
    """A receive found no pending message in the requested direction.

    Historically the channel raised :class:`ChannelClosedError` for this
    case even when the channel was open; the subclass keeps existing
    ``except ChannelClosedError`` handlers working while letting new code
    distinguish "nothing arrived" (a dropped message, a protocol running
    ahead of its peer) from "the link is gone".
    """


class FrameCorruptionError(ReproError):
    """A framed message failed its length or CRC32 check.

    Raised at the receiving end of a checksummed channel
    (:mod:`repro.net.frame`) when bit-flips or truncation mangled a frame
    in flight.  Recoverable: the supervisor retries the round.
    """


class DeltaFormatError(ReproError):
    """A delta stream could not be decoded."""


class IntegrityError(ReproError):
    """A reconstructed file failed its whole-file checksum.

    The protocols detect (extremely unlikely) hash-collision failures with a
    strong whole-file checksum; this error signals that the fallback path
    (full transfer) had to be taken or that decoding produced bad data.
    """


class ConfigError(ReproError):
    """A protocol or workload configuration is invalid."""


class WorkloadError(ReproError):
    """A synthetic workload could not be generated as requested."""


class ResumeRefusedError(ReproError):
    """A resumable run was requested but cannot be honoured.

    Raised when ``resume=True`` is asked for without a durable checkpoint
    location to resume *from* — silently starting over would hide exactly
    the restart cost the caller tried to avoid.
    """


class SyncFailedError(ReproError):
    """Every rung of the resilience ladder failed for one file.

    Carries the retry/fallback history so callers (and per-file error
    isolation in the collection layer) can report what was attempted.
    """

    def __init__(self, message: str, attempts: int = 0,
                 history: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.history = history
