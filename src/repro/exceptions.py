"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A synchronization protocol received a malformed or unexpected message."""


class ChannelClosedError(ReproError):
    """An endpoint attempted to use a channel that has been closed."""


class DeltaFormatError(ReproError):
    """A delta stream could not be decoded."""


class IntegrityError(ReproError):
    """A reconstructed file failed its whole-file checksum.

    The protocols detect (extremely unlikely) hash-collision failures with a
    strong whole-file checksum; this error signals that the fallback path
    (full transfer) had to be taken or that decoding produced bad data.
    """


class ConfigError(ReproError):
    """A protocol or workload configuration is invalid."""


class WorkloadError(ReproError):
    """A synthetic workload could not be generated as requested."""
