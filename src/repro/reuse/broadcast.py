"""Multi-client broadcast server with cross-client delta reuse (DESIGN §17).

The paper's deployment: one server pushes an updated collection to many
stale replicas.  :class:`BroadcastDeltaServer` holds the update once —
content-deduplicated (:class:`~repro.reuse.dedup.DedupStore`), sketched
(:class:`~repro.reuse.similarity.SimilarityIndex`) and memoized
(:class:`~repro.reuse.memo.DeltaMemoCache`) — and serves each client the
cheapest sound update per file:

1. **unchanged** — fingerprints agree, zero bytes;
2. **self-delta** — the client's previous version is the reference; the
   encoded payload is memoized by content pair, so every client at the
   same staleness after the first is a cache hit with zero matcher work;
3. **sibling-delta** — the client lacks the file, but holds a similar
   one (min-hash resemblance above threshold): delta against that
   sibling instead of a full transfer;
4. **full** — compressed literal transfer, the last resort.

Every decision is verified: the served payload must reconstruct the
server's bytes exactly before it is handed out.  Distinct from
:mod:`repro.core.broadcast` (the paper's §7 multicast *rounds*); this
module is about server-side computation reuse across unicast clients.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.delta.encoder import zdelta_decode, zdelta_encode
from repro.delta.matcher import DEFAULT_SEED_LENGTH
from repro.exceptions import IntegrityError
from repro.hashing.strong import file_fingerprint
from repro.reuse.dedup import DedupStore
from repro.reuse.memo import DeltaMemoCache, default_delta_memo
from repro.reuse.similarity import (
    DEFAULT_RESEMBLANCE_THRESHOLD,
    SimilarityIndex,
)


@dataclass(frozen=True)
class FileDecision:
    """How one file travelled to one client."""

    name: str
    action: str  # "unchanged" | "self-delta" | "sibling-delta" | "full"
    wire_bytes: int
    reference: str | None = None  # sibling name for "sibling-delta"
    resemblance: float = 0.0
    memo_hit: bool = False
    dedup_hit: bool = False


@dataclass
class ClientUpdate:
    """One client's served update: payload accounting plus reuse counters."""

    decisions: list[FileDecision] = field(default_factory=list)
    reconstructed: dict[str, bytes] = field(default_factory=dict)
    dedup_hits: int = 0
    delta_memo_hits: int = 0
    delta_memo_misses: int = 0
    sibling_refs_used: int = 0
    bytes_saved_vs_self_ref: int = 0

    @property
    def wire_bytes(self) -> int:
        return sum(decision.wire_bytes for decision in self.decisions)


class BroadcastDeltaServer:
    """Serves one updated collection to many clients, reusing all work."""

    def __init__(
        self,
        server_files: dict[str, bytes],
        memo: DeltaMemoCache | None = None,
        dedup: DedupStore | None = None,
        similarity: SimilarityIndex | None = None,
        resemblance_threshold: float = DEFAULT_RESEMBLANCE_THRESHOLD,
        seed_length: int = DEFAULT_SEED_LENGTH,
    ) -> None:
        self.server_files = dict(server_files)
        self.memo = memo if memo is not None else default_delta_memo()
        self.dedup = dedup if dedup is not None else DedupStore()
        self.similarity = (
            similarity if similarity is not None else SimilarityIndex()
        )
        self.resemblance_threshold = resemblance_threshold
        self.seed_length = seed_length
        self.clients_served = 0
        #: fingerprint -> min-hash signature, shared across clients.
        self._signatures: dict[bytes, np.ndarray] = {}
        #: (reference_fp, target_fp) pairs whose memoized payload already
        #: reconstructed the target exactly once.  The memo returns the
        #: byte-identical payload and decoding is deterministic, so later
        #: clients skip the decode and reuse the canonical target bytes.
        self._verified: set[tuple[bytes, bytes]] = set()
        self.fingerprints = self.dedup.ingest(self.server_files)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest_history(self, versions: dict[str, bytes]) -> dict[str, bytes]:
        """Register previous versions as canonical reference blobs.

        A client whose stale copy matches any ingested version is then
        served from the dedup store without resending its bytes — the
        ``dedup_hit`` on its decision records that.
        """
        return self.dedup.ingest(versions)

    def _signature(self, fingerprint: bytes, data: bytes) -> np.ndarray:
        signature = self._signatures.get(fingerprint)
        if signature is None:
            signature = self.similarity.signature_of(data)
            self._signatures[fingerprint] = signature
        return signature

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, client_files: dict[str, bytes]) -> ClientUpdate:
        """Compute one client's update; memo/dedup state stays warm."""
        update = ClientUpdate()
        stats = self.memo.stats
        hits_before, misses_before = stats.hits, stats.misses

        # The sibling pool is what the *client* holds: references must be
        # bytes the receiving side can delta against.
        sibling_index = SimilarityIndex(
            num_perm=self.similarity.num_perm,
            bands=self.similarity.bands,
            window=self.similarity.window,
            mask_bits=self.similarity.mask_bits,
        )
        client_fingerprints: dict[str, bytes] = {}
        for name in sorted(client_files):
            fingerprint = file_fingerprint(client_files[name])
            client_fingerprints[name] = fingerprint
            sibling_index.add(
                name,
                signature=self._signature(fingerprint, client_files[name]),
            )

        for name in sorted(self.server_files):
            new = self.server_files[name]
            new_fingerprint = self.fingerprints[name]
            old = client_files.get(name)
            if old is not None:
                old_fingerprint = client_fingerprints[name]
                if old_fingerprint == new_fingerprint:
                    decision = FileDecision(name, "unchanged", 0)
                    update.reconstructed[name] = old
                    update.decisions.append(decision)
                    continue
                decision = self._self_delta(
                    name, old, old_fingerprint, new, new_fingerprint, update
                )
            else:
                decision = self._sibling_or_full(
                    name,
                    new,
                    new_fingerprint,
                    sibling_index,
                    client_files,
                    client_fingerprints,
                    update,
                )
            update.decisions.append(decision)
            if update.reconstructed[name] != new:
                raise IntegrityError(
                    f"broadcast reconstruction differs at {name}"
                )

        update.delta_memo_hits = stats.hits - hits_before
        update.delta_memo_misses = stats.misses - misses_before
        self.clients_served += 1
        return update

    def _self_delta(
        self,
        name: str,
        old: bytes,
        old_fingerprint: bytes,
        new: bytes,
        new_fingerprint: bytes,
        update: ClientUpdate,
    ) -> FileDecision:
        # When the client's stale version is already a canonical blob
        # (an ingested past version), the server never touches the
        # client's bytes — the reference comes from the dedup store.
        dedup_hit = old_fingerprint in self.dedup
        reference = self.dedup.get(old_fingerprint) if dedup_hit else old
        if dedup_hit:
            update.dedup_hits += 1
        hits_before = self.memo.stats.hits
        payload = self.memo.payload(
            "zdelta",
            old_fingerprint,
            new_fingerprint,
            self.seed_length,
            lambda: zdelta_encode(
                reference, new, seed_length=self.seed_length
            ),
        )
        update.reconstructed[name] = self._reconstruct(
            reference, old_fingerprint, new, new_fingerprint, payload, name
        )
        return FileDecision(
            name,
            "self-delta",
            len(payload),
            memo_hit=self.memo.stats.hits > hits_before,
            dedup_hit=dedup_hit,
        )

    def _reconstruct(
        self,
        reference: bytes,
        reference_fingerprint: bytes,
        new: bytes,
        new_fingerprint: bytes,
        payload: bytes,
        name: str,
    ) -> bytes:
        """Decode-and-verify once per content pair; replay for free after.

        The memo hands every client at the same staleness the identical
        payload, and decoding is a pure function of (reference, payload),
        so one successful reconstruction proves them all.
        """
        key = (reference_fingerprint, new_fingerprint)
        if key in self._verified:
            return new
        reconstructed = zdelta_decode(reference, payload)
        if reconstructed != new:
            raise IntegrityError(
                f"broadcast reconstruction differs at {name}"
            )
        self._verified.add(key)
        return reconstructed

    def _sibling_or_full(
        self,
        name: str,
        new: bytes,
        new_fingerprint: bytes,
        sibling_index: SimilarityIndex,
        client_files: dict[str, bytes],
        client_fingerprints: dict[str, bytes],
        update: ClientUpdate,
    ) -> FileDecision:
        # Full-transfer compression is a pure function of the content, so
        # it shares the memo (coder "zlib", reference = target).
        full_payload = self.memo.payload(
            "zlib",
            new_fingerprint,
            new_fingerprint,
            0,
            lambda: zlib.compress(new, 9),
        )
        candidate = sibling_index.best_reference(
            signature=self._signature(new_fingerprint, new),
            threshold=self.resemblance_threshold,
        )
        if candidate is not None:
            sibling_name, resemblance = candidate
            sibling = client_files[sibling_name]
            hits_before = self.memo.stats.hits
            payload = self.memo.payload(
                "zdelta",
                client_fingerprints[sibling_name],
                new_fingerprint,
                self.seed_length,
                lambda: zdelta_encode(
                    sibling, new, seed_length=self.seed_length
                ),
            )
            if len(payload) < len(full_payload):
                update.sibling_refs_used += 1
                update.bytes_saved_vs_self_ref += (
                    len(full_payload) - len(payload)
                )
                update.reconstructed[name] = self._reconstruct(
                    sibling,
                    client_fingerprints[sibling_name],
                    new,
                    new_fingerprint,
                    payload,
                    name,
                )
                return FileDecision(
                    name,
                    "sibling-delta",
                    len(payload),
                    reference=sibling_name,
                    resemblance=resemblance,
                    memo_hit=self.memo.stats.hits > hits_before,
                )
        update.reconstructed[name] = zlib.decompress(full_payload)
        return FileDecision(name, "full", len(full_payload))
