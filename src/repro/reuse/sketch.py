"""Min-hash sketches over content-defined shingles (DESIGN §17).

The similarity machinery follows Recursive Content-Dependent Shingling
(PAPERS.md): a file is cut into *content-defined* chunks — boundaries
fall where a rolling window hash matches a mask, so an insertion only
perturbs the chunks around it, never the whole partition — and the set
of chunk hashes is summarised by a fixed-width min-wise signature.

Two files' resemblance (Jaccard similarity of their shingle sets) is
then estimated as the fraction of signature slots that agree, and the
signature's band structure doubles as an LSH key so candidates are
found without comparing against every file
(:class:`~repro.reuse.similarity.SimilarityIndex`).

Everything here is deterministic: the hash family is derived from a
fixed seed, so signatures are stable across processes and runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import window_hashes

#: Rolling hasher that places chunk boundaries.  Seeded differently from
#: the delta matcher's ``_SEED_HASHER`` so boundary choice and match
#: candidates never correlate.
_SHINGLE_HASHER = DecomposableAdler(seed=0x511E)

#: Rolling window length used for boundary detection.
DEFAULT_WINDOW = 16

#: A boundary fires when the low ``mask_bits`` of the window hash are all
#: ones — mean shingle length ≈ ``2**mask_bits`` bytes.
DEFAULT_MASK_BITS = 6

#: Signature width: number of min-wise hash functions.
DEFAULT_NUM_PERM = 64

#: Seed of the multiply-shift hash family behind the signatures.
_PARAM_SEED = 0x51E7C4

#: Slot value of an empty shingle set (nothing can hash above it).
EMPTY_SLOT = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Cached ``(a, b)`` parameter pairs per ``(num_perm, seed)``.
_param_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _hash_params(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """``num_perm`` multiply-shift parameter pairs, deterministic."""
    key = (num_perm, seed)
    cached = _param_cache.get(key)
    if cached is not None:
        return cached
    rng = np.random.Generator(np.random.PCG64(seed))
    # Odd multipliers make x -> a*x + b (mod 2**64) a bijection, so
    # distinct shingles never collide inside one hash function.
    a = rng.integers(1, 1 << 63, size=num_perm, dtype=np.uint64) * 2 + 1
    b = rng.integers(0, 1 << 63, size=num_perm, dtype=np.uint64)
    _param_cache[key] = (a, b)
    return a, b


def content_shingles(
    data: bytes,
    window: int = DEFAULT_WINDOW,
    mask_bits: int = DEFAULT_MASK_BITS,
) -> np.ndarray:
    """Distinct 64-bit hashes of ``data``'s content-defined chunks.

    Returns a sorted ``uint64`` array (a *set* of shingles: duplicates
    collapse, so the sketch sees content, not repetition counts).  Files
    shorter than one window are a single shingle; empty input has none.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if mask_bits < 1:
        raise ValueError(f"mask_bits must be >= 1, got {mask_bits}")
    if not data:
        return np.empty(0, dtype=np.uint64)
    view = memoryview(data)
    if len(data) <= window:
        return np.array([_chunk_hash(view)], dtype=np.uint64)
    hashes = window_hashes(data, window, _SHINGLE_HASHER)
    mask = np.uint32((1 << mask_bits) - 1)
    # A boundary *ends* a chunk at the last byte of the matching window.
    cuts = (np.flatnonzero((hashes & mask) == mask) + window).tolist()
    starts = [0] + cuts
    ends = cuts + [len(data)]
    out = np.fromiter(
        (
            _chunk_hash(view[start:end])
            for start, end in zip(starts, ends)
            if end > start
        ),
        dtype=np.uint64,
    )
    return np.unique(out)


def _chunk_hash(chunk: memoryview) -> int:
    """64-bit chunk hash: crc32 of the bytes, mixed with the length."""
    return (zlib.crc32(chunk) << 32) ^ (len(chunk) * 0x9E3779B1 & 0xFFFFFFFF)


def minhash_signature(
    shingles: np.ndarray,
    num_perm: int = DEFAULT_NUM_PERM,
    seed: int = _PARAM_SEED,
) -> np.ndarray:
    """Min-wise signature of a shingle set: ``min(a_i*x + b_i)`` per slot.

    Order- and multiplicity-independent: any permutation or repetition
    of ``shingles`` yields the same signature.  An empty set signs as all
    :data:`EMPTY_SLOT`.
    """
    if num_perm < 1:
        raise ValueError(f"num_perm must be >= 1, got {num_perm}")
    shingles = np.unique(np.asarray(shingles, dtype=np.uint64))
    if shingles.size == 0:
        return np.full(num_perm, EMPTY_SLOT, dtype=np.uint64)
    a, b = _hash_params(num_perm, seed)
    # uint64 arithmetic wraps mod 2**64 — exactly the multiply-shift
    # family we want, one (num_perm, num_shingles) block.
    values = shingles[np.newaxis, :] * a[:, np.newaxis] + b[:, np.newaxis]
    return values.min(axis=1)


@dataclass(frozen=True)
class MinHashSketch:
    """Signature plus the shingle count it was computed from."""

    signature: np.ndarray
    shingle_count: int

    @property
    def nbytes(self) -> int:
        """Memory footprint (cache budgeting)."""
        return int(self.signature.nbytes)


def sketch(
    data: bytes,
    window: int = DEFAULT_WINDOW,
    mask_bits: int = DEFAULT_MASK_BITS,
    num_perm: int = DEFAULT_NUM_PERM,
    seed: int = _PARAM_SEED,
) -> MinHashSketch:
    """Content-defined min-hash sketch of ``data``."""
    shingles = content_shingles(data, window=window, mask_bits=mask_bits)
    return MinHashSketch(
        signature=minhash_signature(shingles, num_perm=num_perm, seed=seed),
        shingle_count=int(shingles.size),
    )


def estimate_resemblance(a: np.ndarray, b: np.ndarray) -> float:
    """Estimated Jaccard resemblance: fraction of agreeing slots.

    Unbiased for true min-hash signatures; two empty-set signatures
    agree everywhere (resemblance 1.0 by the empty-set convention).
    """
    if a.shape != b.shape:
        raise ValueError(
            f"signature widths differ: {a.shape} vs {b.shape}"
        )
    if a.size == 0:
        return 0.0
    return float(np.count_nonzero(a == b)) / float(a.size)
