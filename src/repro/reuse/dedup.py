"""Content-addressed dedup view over a collection (DESIGN §17).

A server keeping many versions of many files stores plenty of identical
bytes under different names — renamed files, rolled-back versions, the
same asset shared by several pages.  :class:`DedupStore` maps
``fingerprint -> canonical blob`` so every distinct content is stored
and indexed exactly once; names are just labels onto the blob space.

Backed by a :class:`~repro.collection.store.CollectionStore` the blobs
live under ``objects/<hex fingerprint>`` with the store's crash-safe
atomic writes; without one the store is an in-memory dict (the
broadcast server's default).
"""

from __future__ import annotations

from pathlib import Path

from repro.collection.store import CollectionStore, TMP_SUFFIX
from repro.hashing.strong import file_fingerprint

#: Subdirectory of the backing store that holds canonical blobs.
OBJECTS_DIR = "objects"


class DedupStore:
    """Fingerprint-addressed blob store with dedup accounting.

    ``dedup_hits`` counts ``put()`` calls whose content was already
    canonical (the bytes that never needed storing again);
    ``bytes_deduped`` the payload bytes those hits avoided.
    """

    def __init__(self, store: CollectionStore | str | Path | None = None) -> None:
        if store is not None and not isinstance(store, CollectionStore):
            store = CollectionStore(store)
        self.store = store
        self._blobs: dict[bytes, bytes] = {}
        self.dedup_hits = 0
        self.bytes_deduped = 0
        if store is not None:
            self._load_existing()

    def _load_existing(self) -> None:
        """Index blobs a previous run left on disk (lazy bytes)."""
        objects = self.store.root / OBJECTS_DIR
        if not objects.is_dir():
            return
        for path in objects.iterdir():
            if path.name.endswith(TMP_SUFFIX):
                continue  # orphaned atomic-write temporary
            try:
                fingerprint = bytes.fromhex(path.name)
            except ValueError:
                continue
            if len(fingerprint) == 16:
                # Present on disk; bytes are read on demand in get().
                self._blobs.setdefault(fingerprint, None)

    def _blob_path(self, fingerprint: bytes) -> Path:
        return self.store.path_for(f"{OBJECTS_DIR}/{fingerprint.hex()}")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, data: bytes) -> tuple[bytes, bool]:
        """Store ``data``; return ``(fingerprint, was_new)``.

        ``was_new=False`` is a dedup hit: the content was already
        canonical and nothing was written.
        """
        fingerprint = file_fingerprint(data)
        if fingerprint in self._blobs:
            self.dedup_hits += 1
            self.bytes_deduped += len(data)
            return fingerprint, False
        if self.store is not None:
            from repro.collection.store import atomic_write_bytes

            atomic_write_bytes(self._blob_path(fingerprint), data)
        self._blobs[fingerprint] = data
        return fingerprint, True

    def ingest(self, files: dict[str, bytes]) -> dict[str, bytes]:
        """Store every file; return the ``name -> fingerprint`` map."""
        return {name: self.put(files[name])[0] for name in sorted(files)}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, fingerprint: bytes) -> bytes:
        """Canonical bytes for ``fingerprint`` (KeyError when absent)."""
        try:
            data = self._blobs[fingerprint]
        except KeyError:
            raise KeyError(
                f"no canonical blob for fingerprint {fingerprint.hex()}"
            ) from None
        if data is None:  # indexed from disk, not yet materialised
            data = self._blob_path(fingerprint).read_bytes()
            self._blobs[fingerprint] = data
        return data

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)
