"""LSH-banded similarity index over min-hash sketches (DESIGN §17).

Maps every registered name to its min-hash signature and buckets the
signature's bands so candidate lookup is a handful of dict probes
instead of a scan over the whole collection.  Two files landing in the
same bucket for *any* band are candidates; exact signature agreement
then ranks them, and :meth:`SimilarityIndex.best_reference` returns the
best candidate clearing a resemblance threshold — the sibling-reference
selector used when a client's file has no previous version to delta
against.
"""

from __future__ import annotations

import numpy as np

from repro.reuse.sketch import (
    DEFAULT_MASK_BITS,
    DEFAULT_NUM_PERM,
    DEFAULT_WINDOW,
    estimate_resemblance,
    sketch,
)

#: Default number of LSH bands (rows per band = num_perm // bands).
DEFAULT_BANDS = 16

#: Default resemblance a sibling must clear to serve as a reference.
DEFAULT_RESEMBLANCE_THRESHOLD = 0.5


class SimilarityIndex:
    """Banded min-hash index: add named blobs, look up similar ones."""

    def __init__(
        self,
        num_perm: int = DEFAULT_NUM_PERM,
        bands: int = DEFAULT_BANDS,
        window: int = DEFAULT_WINDOW,
        mask_bits: int = DEFAULT_MASK_BITS,
    ) -> None:
        if bands < 1:
            raise ValueError(f"bands must be >= 1, got {bands}")
        if num_perm % bands != 0:
            raise ValueError(
                f"num_perm ({num_perm}) must be a multiple of bands ({bands})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self.window = window
        self.mask_bits = mask_bits
        self._signatures: dict[str, np.ndarray] = {}
        self._buckets: dict[tuple[int, bytes], set[str]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def signature_of(self, data: bytes) -> np.ndarray:
        """Signature of raw bytes under this index's parameters."""
        return sketch(
            data,
            window=self.window,
            mask_bits=self.mask_bits,
            num_perm=self.num_perm,
        ).signature

    def _band_keys(self, signature: np.ndarray):
        for band in range(self.bands):
            yield (
                band,
                signature[band * self.rows : (band + 1) * self.rows].tobytes(),
            )

    def add(
        self,
        name: str,
        data: bytes | None = None,
        signature: np.ndarray | None = None,
    ) -> np.ndarray:
        """Register ``name`` under its signature (computed unless given)."""
        if signature is None:
            if data is None:
                raise ValueError("add() needs data or a precomputed signature")
            signature = self.signature_of(data)
        if signature.size != self.num_perm:
            raise ValueError(
                f"signature width {signature.size} != num_perm {self.num_perm}"
            )
        self.discard(name)
        self._signatures[name] = signature
        for key in self._band_keys(signature):
            self._buckets.setdefault(key, set()).add(name)
        return signature

    def discard(self, name: str) -> None:
        """Forget ``name`` (no-op when absent)."""
        signature = self._signatures.pop(name, None)
        if signature is None:
            return
        for key in self._band_keys(signature):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._buckets[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidates(self, signature: np.ndarray) -> set[str]:
        """Names sharing at least one band bucket with ``signature``."""
        found: set[str] = set()
        for key in self._band_keys(signature):
            bucket = self._buckets.get(key)
            if bucket:
                found |= bucket
        return found

    def best_reference(
        self,
        data: bytes | None = None,
        signature: np.ndarray | None = None,
        threshold: float = DEFAULT_RESEMBLANCE_THRESHOLD,
        exclude: frozenset[str] | set[str] | tuple[str, ...] = (),
    ) -> tuple[str, float] | None:
        """Best registered sibling clearing ``threshold``, or ``None``.

        Deterministic: ties on estimated resemblance break on the
        lexicographically smallest name.
        """
        if signature is None:
            if data is None:
                raise ValueError(
                    "best_reference() needs data or a precomputed signature"
                )
            signature = self.signature_of(data)
        best: tuple[float, str] | None = None
        for name in self.candidates(signature):
            if name in exclude:
                continue
            resemblance = estimate_resemblance(
                signature, self._signatures[name]
            )
            if resemblance < threshold:
                continue
            ranked = (-resemblance, name)
            if best is None or ranked < best:
                best = ranked
        if best is None:
            return None
        return best[1], -best[0]

    def signature_for(self, name: str) -> np.ndarray:
        return self._signatures[name]

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)
