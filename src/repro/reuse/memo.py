"""Memoized delta computation keyed by content fingerprints (DESIGN §17).

One server pushing an update to many stale replicas computes the same
``(old, new)`` delta over and over — once per client at the same
staleness.  :class:`DeltaMemoCache` memoizes the finished artifacts
(instruction lists and encoded payloads) keyed by the *content* of both
sides plus the coder parameters, so the 2nd..Nth identical request is a
dict hit instead of a matcher run.

Byte-identity guarantee: keys are ``(old fingerprint, new fingerprint,
method, params)``.  Both matching engines are guaranteed to emit
identical instruction streams (the whole point of the scalar parity
oracle), so the engine is deliberately *not* part of the key — a hit
primed by one engine serves the other, and the cached-vs-cold parity
tests pin that equivalence.  A memo hit therefore changes wall-clock
only, never a single wire byte.

The cache is consulted on two tiers:

* ``zdelta_size`` / ``vcdiff_size`` always go through it — they are
  pure measurements (the runner's method-comparison grid), so caching
  is unconditionally safe and free of benchmark distortion.
* ``compute_instructions`` / ``zdelta_encode`` / ``vcdiff_encode``
  consult it only when memoization is switched on — via
  :func:`set_delta_memo_enabled`, the ``REPRO_DELTA_MEMO`` environment
  variable, or ``sync_collection(delta_memo=True)`` — so cold-path
  timing benchmarks stay honest by default.

Like the hash-index caches, the memo is process-local: pool workers
inherit the parent's by fork and their hit/miss deltas are folded back
by the executor.
"""

from __future__ import annotations

import os

from repro.parallel.cache import ContentKeyedCache

#: Default entry budget of the memo cache.
DEFAULT_MEMO_ENTRIES = 512

#: Default byte budget: memoized payloads and instruction lists are
#: small next to the reference indexes, but a fleet of large files could
#: still pile up — 64 MiB bounds the worst case.
DEFAULT_MEMO_BYTES = 64 * 1024 * 1024

#: Environment toggle for the gated tier (``1``/``true``/``on``/``yes``).
MEMO_ENV = "REPRO_DELTA_MEMO"

_TRUTHY = ("1", "true", "on", "yes")


class DeltaMemoCache(ContentKeyedCache):
    """LRU memo of finished delta artifacts, keyed by content identity.

    Entries are frozen-instruction lists (:class:`~repro.delta.Copy` /
    :class:`~repro.delta.Add` are frozen dataclasses) or immutable
    ``bytes`` payloads, so sharing them between sessions is safe.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MEMO_ENTRIES,
        max_bytes: int | None = DEFAULT_MEMO_BYTES,
    ) -> None:
        super().__init__(max_entries, max_bytes=max_bytes)

    @staticmethod
    def _entry_bytes(entry: object) -> int:
        if isinstance(entry, bytes):
            return len(entry)
        if isinstance(entry, list):
            # Instruction list: count the literal bytes plus a nominal
            # per-instruction overhead for the dataclass objects.
            total = 48 * len(entry)
            for instruction in entry:
                data = getattr(instruction, "data", b"")
                total += len(data)
            return total
        return ContentKeyedCache._entry_bytes(entry)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def instructions(
        self,
        old_fingerprint: bytes,
        new_fingerprint: bytes,
        seed_length: int,
        min_match: int,
        build,
    ) -> list:
        """Memoized COPY/ADD instruction list for one content pair."""
        key = (
            "instr",
            old_fingerprint,
            new_fingerprint,
            seed_length,
            min_match,
        )
        return self._get_or_build(key, build)

    def payload(
        self,
        coder: str,
        old_fingerprint: bytes,
        new_fingerprint: bytes,
        seed_length: int,
        build,
    ) -> bytes:
        """Memoized encoded delta payload (``coder`` = zdelta/vcdiff)."""
        key = (coder, old_fingerprint, new_fingerprint, seed_length)
        return self._get_or_build(key, build)


_default_memo = DeltaMemoCache()

#: Tri-state switch for the gated tier: ``None`` defers to the
#: environment, a bool is an explicit in-process override.
_memo_enabled: bool | None = None


def default_delta_memo() -> DeltaMemoCache:
    """The process-wide memo shared by the delta coders."""
    return _default_memo


def reset_default_delta_memo(
    max_entries: int | None = None,
    max_bytes: int | None = DEFAULT_MEMO_BYTES,
) -> DeltaMemoCache:
    """Replace the process-wide memo (tests, budget tuning)."""
    global _default_memo
    _default_memo = DeltaMemoCache(
        max_entries if max_entries is not None else DEFAULT_MEMO_ENTRIES,
        max_bytes=max_bytes,
    )
    return _default_memo


def delta_memo_enabled() -> bool:
    """Whether the gated tier (encode/instructions memoization) is on."""
    if _memo_enabled is not None:
        return _memo_enabled
    return os.environ.get(MEMO_ENV, "").lower() in _TRUTHY


def set_delta_memo_enabled(enabled: bool | None) -> None:
    """Switch the gated tier on/off (``None`` defers to ``REPRO_DELTA_MEMO``)."""
    global _memo_enabled
    _memo_enabled = enabled


class delta_memo_scope:
    """Context manager scoping the gated tier (used by ``sync_collection``).

    Restores the previous switch state on exit, so a memoized collection
    run never leaks the setting into subsequent cold benchmarks.
    """

    def __init__(self, enabled: bool | None) -> None:
        self.enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "delta_memo_scope":
        global _memo_enabled
        self._previous = _memo_enabled
        if self.enabled is not None:
            _memo_enabled = self.enabled
        return self

    def __exit__(self, *exc_info) -> None:
        global _memo_enabled
        _memo_enabled = self._previous
