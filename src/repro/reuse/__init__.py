"""Cross-file delta reuse: dedup store, delta memo, sibling references.

The server-side reuse layer (DESIGN §17) that amortizes one update's
computation across many clients and many similar files:

* :class:`~repro.reuse.dedup.DedupStore` — content-addressed
  ``fingerprint -> canonical blob`` view, so identical bytes across
  names and versions are stored and indexed once;
* :class:`~repro.reuse.memo.DeltaMemoCache` — memoized instruction
  lists and encoded payloads keyed by content pair, byte-identical to
  fresh computation (wall-clock only, never wire bytes);
* :class:`~repro.reuse.similarity.SimilarityIndex` — min-hash over
  content-defined shingles with LSH-band candidate lookup, picking the
  best sibling reference when no previous version exists;
* :class:`~repro.reuse.broadcast.BroadcastDeltaServer` — ties the three
  together to serve one update to a fleet of stale replicas.
"""

from repro.reuse.broadcast import (
    BroadcastDeltaServer,
    ClientUpdate,
    FileDecision,
)
from repro.reuse.dedup import DedupStore
from repro.reuse.memo import (
    DEFAULT_MEMO_BYTES,
    DEFAULT_MEMO_ENTRIES,
    MEMO_ENV,
    DeltaMemoCache,
    default_delta_memo,
    delta_memo_enabled,
    delta_memo_scope,
    reset_default_delta_memo,
    set_delta_memo_enabled,
)
from repro.reuse.similarity import (
    DEFAULT_BANDS,
    DEFAULT_RESEMBLANCE_THRESHOLD,
    SimilarityIndex,
)
from repro.reuse.sketch import (
    DEFAULT_MASK_BITS,
    DEFAULT_NUM_PERM,
    DEFAULT_WINDOW,
    MinHashSketch,
    content_shingles,
    estimate_resemblance,
    minhash_signature,
    sketch,
)

__all__ = [
    "BroadcastDeltaServer",
    "ClientUpdate",
    "DEFAULT_BANDS",
    "DEFAULT_MASK_BITS",
    "DEFAULT_MEMO_BYTES",
    "DEFAULT_MEMO_ENTRIES",
    "DEFAULT_NUM_PERM",
    "DEFAULT_RESEMBLANCE_THRESHOLD",
    "DEFAULT_WINDOW",
    "DedupStore",
    "DeltaMemoCache",
    "FileDecision",
    "MEMO_ENV",
    "MinHashSketch",
    "SimilarityIndex",
    "content_shingles",
    "default_delta_memo",
    "delta_memo_enabled",
    "delta_memo_scope",
    "estimate_resemblance",
    "minhash_signature",
    "reset_default_delta_memo",
    "set_delta_memo_enabled",
    "sketch",
]
