"""Plain-text tables and bar charts for the benchmark scripts.

The paper's figures are grouped bar charts of KB transferred; a terminal
rendering keeps the harness dependency-free while preserving the shape
comparisons (who wins, by what factor, where the crossover sits).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_kb(nbytes: float) -> str:
    """Bytes as a compact KB string."""
    return f"{nbytes / 1024.0:,.1f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def render_grouped_bars(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    unit: str = "KB",
    width: int = 48,
    title: str | None = None,
) -> str:
    """ASCII grouped bar chart: one group per x-tick, one bar per series."""
    peak = max(
        (value for values in series.values() for value in values), default=1.0
    )
    if peak <= 0:
        peak = 1.0
    label_width = max((len(name) for name in series), default=4)
    lines = []
    if title:
        lines.append(title)
    for group_index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[group_index]
            bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
            lines.append(
                f"  {name.ljust(label_width)} |{bar} {value:,.1f} {unit}"
            )
    return "\n".join(lines)
