"""Uniform wrappers around every synchronization method under evaluation."""

from __future__ import annotations

import zlib

from repro.core import ProtocolConfig, synchronize
from repro.delta import vcdiff_size, zdelta_size
from repro.rsync import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_BLOCK_SIZES,
    rsync_optimal,
    rsync_sync,
)
from repro.syncmethod import MethodOutcome, SyncMethod, wire_outcome

__all__ = [
    "AdaptiveMethod",
    "FullTransferMethod",
    "MethodOutcome",
    "MultiroundRsyncMethod",
    "OursMethod",
    "RsyncMethod",
    "RsyncOptimalMethod",
    "SyncMethod",
    "VcdiffMethod",
    "ZdeltaMethod",
    "standard_methods",
]


# Now lives in repro.syncmethod (import-cycle-free home shared with the
# pipelined collection scheduler); kept under the old private name for
# the harness modules that import it.
_wire_outcome = wire_outcome


class OursMethod(SyncMethod):
    """The paper's multi-round protocol."""

    supports_checkpoint = True
    supports_pickle = True
    supports_pipeline = True

    def __init__(self, config: ProtocolConfig | None = None, name: str = "ours") -> None:
        self.config = config or ProtocolConfig()
        self.name = name

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return self.sync_file_over(old, new, None)

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        return _wire_outcome(synchronize(old, new, self.config, channel), new)

    def checkpoint_identity(self, old: bytes, new: bytes):
        from repro.hashing.strong import file_fingerprint
        from repro.resilience.checkpoint import SessionIdentity, config_digest

        return SessionIdentity(
            self.name,
            file_fingerprint(old),
            file_fingerprint(new),
            config_digest(self.config),
        )

    def sync_file_resumable(
        self, old: bytes, new: bytes, channel, checkpointer=None, resume_from=None
    ) -> MethodOutcome:
        return _wire_outcome(
            synchronize(
                old,
                new,
                self.config,
                channel,
                checkpointer=checkpointer,
                resume_from=resume_from,
            ),
            new,
        )

    def open_session(self, old: bytes, new: bytes, checkpointer=None):
        from repro.core.protocol import CoreSyncSession

        return CoreSyncSession(old, new, self.config, checkpointer=checkpointer)


class RsyncMethod(SyncMethod):
    """rsync with a fixed block size (the tool's default by default)."""

    supports_pickle = True

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self.block_size = block_size
        self.name = f"rsync(b={block_size})" if block_size != DEFAULT_BLOCK_SIZE else "rsync"

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return self.sync_file_over(old, new, None)

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        result = rsync_sync(
            old, new, block_size=self.block_size, channel=channel
        )
        return _wire_outcome(result, new)


class RsyncOptimalMethod(SyncMethod):
    """Idealised rsync: per-file best block size (an oracle baseline)."""

    name = "rsync-opt"
    supports_pickle = True

    def __init__(self, block_sizes: tuple[int, ...] = DEFAULT_SEARCH_BLOCK_SIZES) -> None:
        self.block_sizes = block_sizes

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        result = rsync_optimal(old, new, block_sizes=self.block_sizes)
        return _wire_outcome(result, new)


class MultiroundRsyncMethod(SyncMethod):
    """Recursive splitting without the paper's refinements (Langford [25])."""

    name = "multiround"
    supports_checkpoint = True
    supports_pickle = True
    supports_pipeline = True

    def __init__(self, config=None) -> None:
        from repro.multiround import MultiroundConfig

        self.config = config or MultiroundConfig()

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return self.sync_file_over(old, new, None)

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        from repro.multiround import multiround_rsync_sync

        result = multiround_rsync_sync(old, new, self.config, channel=channel)
        return _wire_outcome(result, new)

    def checkpoint_identity(self, old: bytes, new: bytes):
        from repro.hashing.strong import file_fingerprint
        from repro.resilience.checkpoint import SessionIdentity, config_digest

        return SessionIdentity(
            self.name,
            file_fingerprint(old),
            file_fingerprint(new),
            config_digest(self.config),
        )

    def sync_file_resumable(
        self, old: bytes, new: bytes, channel, checkpointer=None, resume_from=None
    ) -> MethodOutcome:
        from repro.multiround import multiround_rsync_sync

        result = multiround_rsync_sync(
            old,
            new,
            self.config,
            channel=channel,
            checkpointer=checkpointer,
            resume_from=resume_from,
        )
        return _wire_outcome(result, new)

    def open_session(self, old: bytes, new: bytes, checkpointer=None):
        from repro.multiround import MultiroundSession

        return MultiroundSession(old, new, self.config, checkpointer=checkpointer)


class AdaptiveMethod(SyncMethod):
    """The §7 adaptive tool: probe each file, then pick parameters."""

    name = "ours-adaptive"

    def __init__(self, link=None) -> None:
        self.link = link

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        from repro.core import adaptive_synchronize

        result, _config = adaptive_synchronize(old, new, link=self.link)
        return _wire_outcome(result, new)


class ZdeltaMethod(SyncMethod):
    """Local delta compression — the paper's practical lower bound."""

    name = "zdelta"
    supports_pickle = True

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        size = zdelta_size(old, new)
        return MethodOutcome(
            total_bytes=size,
            server_to_client=size,
            breakdown={"s2c/delta": size},
        )


class VcdiffMethod(SyncMethod):
    """The second delta-compressor baseline."""

    name = "vcdiff"
    supports_pickle = True

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        size = vcdiff_size(old, new)
        return MethodOutcome(
            total_bytes=size,
            server_to_client=size,
            breakdown={"s2c/delta": size},
        )


class FullTransferMethod(SyncMethod):
    """Send the new file compressed — what non-delta tools do."""

    name = "gzip-full"
    supports_pickle = True

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        size = len(zlib.compress(new, 9))
        return MethodOutcome(
            total_bytes=size,
            server_to_client=size,
            breakdown={"s2c/full": size},
        )

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        if channel is None:
            return self.sync_file(old, new)
        from repro.net.metrics import Direction

        payload = zlib.compress(new, 9)
        channel.send(Direction.SERVER_TO_CLIENT, payload, "full")
        received = channel.receive(Direction.SERVER_TO_CLIENT)
        return MethodOutcome(
            total_bytes=len(payload),
            server_to_client=len(payload),
            breakdown={"s2c/full": len(payload)},
            correct=zlib.decompress(received) == new,
        )


def standard_methods(config: ProtocolConfig | None = None) -> list[SyncMethod]:
    """The comparison set used by most tables: ours vs all baselines."""
    return [
        OursMethod(config),
        RsyncMethod(),
        RsyncOptimalMethod(),
        ZdeltaMethod(),
        VcdiffMethod(),
        FullTransferMethod(),
    ]
