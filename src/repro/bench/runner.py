"""Run methods over collection pairs and collect comparable rows."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.methods import MethodOutcome, SyncMethod
from repro.collection.sync import CollectionReport, sync_collection


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class CollectionRun:
    """One (method, collection-pair) measurement.

    Besides the wire-byte accounting, each row tracks the compute cost of
    the run: worker count, total CPU seconds across all processes, the
    per-file wall-clock percentiles, and the hash-index cache hit/miss
    counters — so speedups from parallelism and caching are measured, not
    anecdotal.
    """

    method: str
    total_bytes: int
    manifest_bytes: int
    changed_bytes: int
    added_bytes: int
    files_changed: int
    files_unchanged: int
    elapsed_seconds: float
    breakdown: dict[str, int] = field(default_factory=dict)
    workers: int = 1
    cpu_seconds: float = 0.0
    p50_file_seconds: float = 0.0
    p95_file_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    ref_cache_hits: int = 0
    ref_cache_misses: int = 0
    arena_used: bool = False
    arena_bytes: int = 0
    retries: int = 0
    fallback_files: int = 0
    failed_files: int = 0
    retransmitted_bytes: int = 0
    recovery_seconds: float = 0.0
    rounds_salvaged: int = 0
    resume_handshake_bits: int = 0
    checkpoint_bytes_written: int = 0
    health_score: float = 1.0
    breaker_opens: int = 0
    deadline_salvages: int = 0
    adaptive_backoff_s: float = 0.0
    collisions_detected: int = 0
    repair_rounds: int = 0
    repair_bytes: int = 0
    pipelined: bool = False
    waves: int = 0
    mux_overhead_bytes: int = 0
    roundtrips_on_wire: int = 0
    link_wall_clock_s: float = 0.0
    dedup_hits: int = 0
    delta_memo_hits: int = 0
    delta_memo_misses: int = 0
    sibling_refs_used: int = 0
    bytes_saved_vs_self_ref: int = 0

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


def run_method_on_collection(
    method: SyncMethod,
    old_files: dict[str, bytes],
    new_files: dict[str, bytes],
    verify: bool = True,
    workers: int | None = 1,
    use_arena: bool | None = None,
    on_error: str = "raise",
    fault_plan=None,
    retry_policy=None,
    link=None,
    checkpoint_dir=None,
    resume: bool = False,
    store=None,
    adaptive_retry=False,
    deadline_s: float | None = None,
    run_deadline_s: float | None = None,
    breaker_threshold=None,
    pipeline: bool = False,
    window: int = 8,
    delta_memo: bool | None = None,
    sibling_refs: bool = False,
    resemblance_threshold: float = 0.5,
) -> CollectionRun:
    """Synchronise one collection pair and flatten the report to a row."""
    started = time.perf_counter()
    report: CollectionReport = sync_collection(
        old_files,
        new_files,
        method,
        verify=verify,
        workers=workers,
        use_arena=use_arena,
        on_error=on_error,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        link=link,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        store=store,
        adaptive_retry=adaptive_retry,
        deadline_s=deadline_s,
        run_deadline_s=run_deadline_s,
        breaker_threshold=breaker_threshold,
        pipeline=pipeline,
        window=window,
        delta_memo=delta_memo,
        sibling_refs=sibling_refs,
        resemblance_threshold=resemblance_threshold,
    )
    elapsed = time.perf_counter() - started

    merged: MethodOutcome = MethodOutcome(total_bytes=0)
    for outcome in report.per_file.values():
        merged = merged + outcome
    file_seconds = list(report.per_file_seconds.values())
    return CollectionRun(
        method=method.name,
        total_bytes=report.total_bytes,
        manifest_bytes=report.manifest_bytes,
        changed_bytes=report.changed_transfer_bytes,
        added_bytes=report.added_bytes,
        files_changed=report.files_changed,
        files_unchanged=report.files_unchanged,
        elapsed_seconds=elapsed,
        breakdown=merged.breakdown,
        workers=report.workers,
        cpu_seconds=report.cpu_seconds,
        p50_file_seconds=_percentile(file_seconds, 0.50),
        p95_file_seconds=_percentile(file_seconds, 0.95),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        ref_cache_hits=report.ref_cache_hits,
        ref_cache_misses=report.ref_cache_misses,
        arena_used=report.arena_used,
        arena_bytes=report.arena_bytes,
        retries=report.total_retries,
        fallback_files=report.files_fallback,
        failed_files=report.files_failed,
        retransmitted_bytes=report.retransmitted_bytes,
        recovery_seconds=merged.recovery_seconds,
        rounds_salvaged=report.rounds_salvaged,
        resume_handshake_bits=report.resume_handshake_bits,
        checkpoint_bytes_written=report.checkpoint_bytes_written,
        health_score=report.health_score,
        breaker_opens=report.breaker_opens,
        deadline_salvages=report.deadline_salvages,
        adaptive_backoff_s=report.adaptive_backoff_s,
        collisions_detected=report.collisions_detected,
        repair_rounds=report.repair_rounds,
        repair_bytes=report.repair_bytes,
        pipelined=report.pipelined,
        waves=report.waves,
        mux_overhead_bytes=report.mux_overhead_bytes,
        roundtrips_on_wire=report.roundtrips_on_wire,
        link_wall_clock_s=report.link_wall_clock_s,
        dedup_hits=report.dedup_hits,
        delta_memo_hits=report.delta_memo_hits,
        delta_memo_misses=report.delta_memo_misses,
        sibling_refs_used=report.sibling_refs_used,
        bytes_saved_vs_self_ref=report.bytes_saved_vs_self_ref,
    )
