"""Run methods over collection pairs and collect comparable rows."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.methods import MethodOutcome, SyncMethod
from repro.collection.sync import CollectionReport, sync_collection


@dataclass
class CollectionRun:
    """One (method, collection-pair) measurement."""

    method: str
    total_bytes: int
    manifest_bytes: int
    changed_bytes: int
    added_bytes: int
    files_changed: int
    files_unchanged: int
    elapsed_seconds: float
    breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


def run_method_on_collection(
    method: SyncMethod,
    old_files: dict[str, bytes],
    new_files: dict[str, bytes],
    verify: bool = True,
) -> CollectionRun:
    """Synchronise one collection pair and flatten the report to a row."""
    started = time.perf_counter()
    report: CollectionReport = sync_collection(
        old_files, new_files, method, verify=verify
    )
    elapsed = time.perf_counter() - started

    merged: MethodOutcome = MethodOutcome(total_bytes=0)
    for outcome in report.per_file.values():
        merged = merged + outcome
    return CollectionRun(
        method=method.name,
        total_bytes=report.total_bytes,
        manifest_bytes=report.manifest_bytes,
        changed_bytes=report.changed_transfer_bytes,
        added_bytes=report.added_bytes,
        files_changed=report.files_changed,
        files_unchanged=report.files_unchanged,
        elapsed_seconds=elapsed,
        breakdown=merged.breakdown,
    )
