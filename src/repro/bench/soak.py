"""Chaos-soak harness: sustained seeded fault schedules over collections.

One-shot fault tests prove a single failure recovers; a *soak* proves the
resilience stack holds its invariants under sustained, shaped hostility:
every healthy file completes, pathological files are reported (never
raised), accounting counters stay consistent, and the whole thing is
deterministic per ``(shape, seed)`` cell.

:func:`run_soak` sweeps the matrix of
:func:`~repro.net.chaos.chaos_plan` shapes × seeds over a seeded
workload, running each cell through :func:`~repro.collection.sync_collection`
with the adaptive layer on (AIMD retry, per-file breakers, per-file
deadline, ``on_error="skip"``), and folds each report into a
:class:`SoakRow`.  :class:`SoakReport` renders the matrix as a text
table or JSON — the artifact the CI ``chaos-soak`` job uploads.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.net.chaos import chaos_plan

#: (workload scale, headline fault rate, per-file deadline seconds)
SOAK_PROFILES: dict[str, tuple[float, float, float]] = {
    "short": (0.04, 0.12, 1800.0),
    "long": (0.15, 0.2, 3600.0),
}

DEFAULT_SHAPES = ("bursty", "periodic", "degrading")
DEFAULT_SEEDS = (1, 2, 3)


@dataclass
class SoakRow:
    """One (shape, seed) cell of the soak matrix."""

    shape: str
    seed: int
    files_changed: int
    files_synced: int
    files_failed: int
    retries: int
    faults_injected: int
    retransmitted_bytes: int
    recovery_seconds: float
    health_score: float
    breaker_opens: int
    deadline_salvages: int
    adaptive_backoff_s: float
    elapsed_seconds: float
    failed_names: list[str] = field(default_factory=list)

    @property
    def completed_all_healthy(self) -> bool:
        """Did every file the faults didn't kill come through verified?"""
        return self.files_synced + self.files_failed == self.files_changed


@dataclass
class SoakReport:
    """The full matrix plus the knobs that produced it."""

    profile: str
    shapes: tuple[str, ...]
    seeds: tuple[int, ...]
    rate: float
    deadline_s: float
    breaker_threshold: int
    adaptive: bool
    rows: list[SoakRow] = field(default_factory=list)

    @property
    def total_failed(self) -> int:
        return sum(row.files_failed for row in self.rows)

    @property
    def all_cells_consistent(self) -> bool:
        return all(row.completed_all_healthy for row in self.rows)

    def render(self) -> str:
        header = (
            f"chaos soak [{self.profile}] rate={self.rate} "
            f"deadline={self.deadline_s:.0f}s "
            f"breaker_threshold={self.breaker_threshold} "
            f"adaptive={'on' if self.adaptive else 'off'}"
        )
        lines = [header, "-" * len(header)]
        columns = (
            f"{'shape':<10} {'seed':>4} {'files':>5} {'ok':>4} {'fail':>4} "
            f"{'retries':>7} {'faults':>6} {'retx B':>9} {'health':>6} "
            f"{'opens':>5} {'salvage':>7} {'backoff s':>9}"
        )
        lines.append(columns)
        for row in self.rows:
            lines.append(
                f"{row.shape:<10} {row.seed:>4} {row.files_changed:>5} "
                f"{row.files_synced:>4} {row.files_failed:>4} "
                f"{row.retries:>7} {row.faults_injected:>6} "
                f"{row.retransmitted_bytes:>9,} {row.health_score:>6.2f} "
                f"{row.breaker_opens:>5} {row.deadline_salvages:>7} "
                f"{row.adaptive_backoff_s:>9.1f}"
            )
        verdict = (
            "every healthy file synced; pathological files reported"
            if self.all_cells_consistent
            else "INCONSISTENT CELLS — see rows above"
        )
        lines.append(f"=> {verdict} ({self.total_failed} failures total)")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["all_cells_consistent"] = self.all_cells_consistent
        payload["total_failed"] = self.total_failed
        return json.dumps(payload, indent=2, sort_keys=True)


def run_soak(
    shapes: tuple[str, ...] = DEFAULT_SHAPES,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    profile: str = "short",
    adaptive: bool = True,
    breaker_threshold: int = 3,
    method=None,
) -> SoakReport:
    """Run the soak matrix and return the report.

    Every cell gets a fresh seeded workload and a fresh
    :class:`~repro.net.chaos.ScheduledFaultPlan`, so cells are
    independent and individually reproducible.  ``adaptive=False`` runs
    the same matrix under the static retry policy — the baseline the
    adaptive-vs-static benchmark compares against.
    """
    from repro.bench.methods import OursMethod
    from repro.collection import sync_collection
    from repro.workloads import gcc_like

    if profile not in SOAK_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(SOAK_PROFILES)}, got {profile!r}"
        )
    scale, rate, deadline_s = SOAK_PROFILES[profile]

    report = SoakReport(
        profile=profile,
        shapes=tuple(shapes),
        seeds=tuple(seeds),
        rate=rate,
        deadline_s=deadline_s,
        breaker_threshold=breaker_threshold,
        adaptive=adaptive,
    )
    for shape in shapes:
        for seed in seeds:
            tree = gcc_like(scale=scale, seed=100 + seed)
            plan = chaos_plan(shape, seed=seed, rate=rate)
            started = time.perf_counter()
            cell = sync_collection(
                tree.old,
                tree.new,
                method if method is not None else OursMethod(),
                workers=1,
                on_error="skip",
                fault_plan=plan,
                adaptive_retry=adaptive,
                deadline_s=deadline_s if adaptive else None,
                breaker_threshold=breaker_threshold if adaptive else None,
            )
            elapsed = time.perf_counter() - started
            synced = sum(
                1
                for name in cell.per_file
                if name not in cell.failed
            )
            report.rows.append(
                SoakRow(
                    shape=shape,
                    seed=seed,
                    files_changed=cell.files_changed,
                    files_synced=synced,
                    files_failed=cell.files_failed,
                    retries=cell.total_retries,
                    faults_injected=plan.faults_injected,
                    retransmitted_bytes=cell.retransmitted_bytes,
                    recovery_seconds=round(
                        sum(
                            o.recovery_seconds for o in cell.per_file.values()
                        ),
                        2,
                    ),
                    health_score=round(cell.health_score, 4),
                    breaker_opens=cell.breaker_opens,
                    deadline_salvages=cell.deadline_salvages,
                    adaptive_backoff_s=round(cell.adaptive_backoff_s, 2),
                    elapsed_seconds=round(elapsed, 3),
                    failed_names=sorted(cell.failed),
                )
            )
    return report


# ----------------------------------------------------------------------
# Scrub soak: bit rot at rest → detect → repair → converge
# ----------------------------------------------------------------------

#: (workload scale, files bit-rotted, bit flips per file, repair-link
#: headline fault rate) per profile.  The repair sync runs over a
#: *hostile* link on purpose: convergence must survive both the rot and
#: the weather.
SCRUB_SOAK_PROFILES: dict[str, tuple[float, int, int, float]] = {
    "short": (0.04, 3, 2, 0.08),
    "long": (0.15, 6, 3, 0.15),
}

#: Manifest entries audited per scrub slice in the soak — small enough
#: that every soak cell exercises the resumable cursor several times.
SCRUB_SOAK_SLICE = 4


@dataclass
class ScrubSoakRow:
    """One seed of the scrub soak: rot → detect → repair → re-verify."""

    seed: int
    files_total: int
    files_rotted: int
    files_deleted: int
    scrub_slices: int
    divergent_found: int
    missing_found: int
    quarantined: int
    repair_bytes_total: int
    collisions_detected: int
    repair_rounds: int
    retries: int
    fallback_files: int
    converged: bool
    elapsed_seconds: float

    @property
    def detected_all_damage(self) -> bool:
        """Did the scrub find every file the plan damaged?"""
        return (
            self.divergent_found + self.missing_found
            >= self.files_rotted + self.files_deleted
        )


@dataclass
class ScrubSoakReport:
    """The scrub soak matrix plus the knobs that produced it."""

    profile: str
    shape: str
    seeds: tuple[int, ...]
    rate: float
    adaptive: bool
    rows: list[ScrubSoakRow] = field(default_factory=list)

    @property
    def all_converged(self) -> bool:
        return all(
            row.converged and row.detected_all_damage for row in self.rows
        )

    def render(self) -> str:
        header = (
            f"scrub soak [{self.profile}] shape={self.shape} "
            f"rate={self.rate} adaptive={'on' if self.adaptive else 'off'}"
        )
        lines = [header, "-" * len(header)]
        lines.append(
            f"{'seed':>4} {'files':>5} {'rot':>4} {'del':>4} {'slices':>6} "
            f"{'diverg':>6} {'miss':>4} {'quar':>4} {'rep B':>8} "
            f"{'coll':>4} {'rounds':>6} {'retry':>5} {'conv':>5}"
        )
        for row in self.rows:
            lines.append(
                f"{row.seed:>4} {row.files_total:>5} {row.files_rotted:>4} "
                f"{row.files_deleted:>4} {row.scrub_slices:>6} "
                f"{row.divergent_found:>6} {row.missing_found:>4} "
                f"{row.quarantined:>4} {row.repair_bytes_total:>8,} "
                f"{row.collisions_detected:>4} {row.repair_rounds:>6} "
                f"{row.retries:>5} {str(row.converged):>5}"
            )
        verdict = (
            "every rotted replica converged back to byte-identical"
            if self.all_converged
            else "DIVERGENCE SURVIVED REPAIR — see rows above"
        )
        lines.append(f"=> {verdict}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["all_converged"] = self.all_converged
        return json.dumps(payload, indent=2, sort_keys=True)


def run_scrub_soak(
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    profile: str = "short",
    shape: str = "bursty",
    adaptive: bool = True,
    root: str | Path | None = None,
) -> ScrubSoakReport:
    """Prove a bit-rotted replica converges back to byte-identical.

    Each seed materialises a seeded workload into an on-disk store,
    applies :class:`~repro.net.chaos.BitRotPlan` damage (plus one
    deterministic whole-file deletion), scrubs the store in resumable
    rate-limited slices, repairs the damage over a *faulty* link with the
    adaptive supervisor and ``on_error="fallback"``, then re-scrubs and
    byte-compares the store against the pristine source.  ``root`` keeps
    the stores somewhere inspectable; by default each cell works in a
    fresh temporary directory.
    """
    from repro.collection import CollectionStore, Manifest, StoreScrubber
    from repro.net.chaos import BitRotPlan
    from repro.workloads import gcc_like

    if profile not in SCRUB_SOAK_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(SCRUB_SOAK_PROFILES)}, "
            f"got {profile!r}"
        )
    scale, files_affected, flips_per_file, rate = SCRUB_SOAK_PROFILES[profile]

    report = ScrubSoakReport(
        profile=profile,
        shape=shape,
        seeds=tuple(seeds),
        rate=rate,
        adaptive=adaptive,
    )
    base = Path(root) if root is not None else None
    for seed in seeds:
        tree = gcc_like(scale=scale, seed=200 + seed)
        source = tree.new
        started = time.perf_counter()
        with tempfile.TemporaryDirectory(dir=base) as workdir:
            store = CollectionStore(Path(workdir) / f"store-{seed}")
            store.write_collection(source)
            manifest = Manifest.of_collection(source)

            rot = BitRotPlan(
                seed=seed,
                files_affected=files_affected,
                flips_per_file=flips_per_file,
            )
            victims = rot.apply(store.root)
            # One deterministic whole-file loss exercises the missing
            # path alongside the divergent one.
            deleted = sorted(set(source) - set(victims))[seed % 3]
            store.path_for(deleted).unlink()

            scrubber = StoreScrubber(
                store,
                manifest,
                cursor_path=Path(workdir) / f"cursor-{seed}",
                rate_limit_bps=1 << 30,
            )
            slices = 0
            merged = None
            while True:
                part = scrubber.scrub(max_entries=SCRUB_SOAK_SLICE)
                slices += 1
                if merged is None:
                    merged = part
                else:
                    merged.scanned += part.scanned
                    merged.ok += part.ok
                    merged.divergent.extend(part.divergent)
                    merged.missing.extend(part.missing)
                    merged.quarantined.extend(part.quarantined)
                if part.completed:
                    break

            repair = scrubber.repair(
                source,
                report=merged,
                fault_plan=chaos_plan(shape, seed=seed, rate=rate),
                adaptive_retry=adaptive,
                on_error="fallback",
                workers=1,
            )
            final = scrubber.scrub_all(quarantine=False)
            converged = final.clean and all(
                store.read_file(name) == data
                for name, data in source.items()
            )
        report.rows.append(
            ScrubSoakRow(
                seed=seed,
                files_total=len(source),
                files_rotted=len(victims),
                files_deleted=1,
                scrub_slices=slices,
                divergent_found=len(merged.divergent),
                missing_found=len(merged.missing),
                quarantined=len(merged.quarantined),
                repair_bytes_total=repair.total_bytes,
                collisions_detected=repair.collisions_detected,
                repair_rounds=repair.repair_rounds,
                retries=repair.total_retries,
                fallback_files=repair.files_fallback,
                converged=converged,
                elapsed_seconds=round(time.perf_counter() - started, 3),
            )
        )
    return report
