"""Export benchmark rows to CSV/JSON for external plotting.

The terminal tables in :mod:`repro.bench.report` preserve the shapes; for
paper-style figures people want the raw series.  These helpers flatten
:class:`~repro.bench.runner.CollectionRun` rows (or any mapping rows)
into the two formats everything can read.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.bench.runner import CollectionRun


def run_to_row(run: CollectionRun) -> dict[str, object]:
    """Flatten one collection run into a plain dict."""
    row: dict[str, object] = {
        "method": run.method,
        "total_bytes": run.total_bytes,
        "manifest_bytes": run.manifest_bytes,
        "changed_bytes": run.changed_bytes,
        "added_bytes": run.added_bytes,
        "files_changed": run.files_changed,
        "files_unchanged": run.files_unchanged,
        "elapsed_seconds": round(run.elapsed_seconds, 4),
        "workers": run.workers,
        "cpu_seconds": round(run.cpu_seconds, 4),
        "p50_file_seconds": round(run.p50_file_seconds, 6),
        "p95_file_seconds": round(run.p95_file_seconds, 6),
        "cache_hits": run.cache_hits,
        "cache_misses": run.cache_misses,
        "ref_cache_hits": run.ref_cache_hits,
        "ref_cache_misses": run.ref_cache_misses,
        "arena_used": run.arena_used,
        "arena_bytes": run.arena_bytes,
        "retries": run.retries,
        "fallback_files": run.fallback_files,
        "failed_files": run.failed_files,
        "retransmitted_bytes": run.retransmitted_bytes,
        "recovery_seconds": round(run.recovery_seconds, 4),
        "rounds_salvaged": run.rounds_salvaged,
        "resume_handshake_bits": run.resume_handshake_bits,
        "checkpoint_bytes_written": run.checkpoint_bytes_written,
        "health_score": round(run.health_score, 4),
        "breaker_opens": run.breaker_opens,
        "deadline_salvages": run.deadline_salvages,
        "adaptive_backoff_s": round(run.adaptive_backoff_s, 4),
        "collisions_detected": run.collisions_detected,
        "repair_rounds": run.repair_rounds,
        "repair_bytes": run.repair_bytes,
        "pipelined": run.pipelined,
        "waves": run.waves,
        "mux_overhead_bytes": run.mux_overhead_bytes,
        "roundtrips_on_wire": run.roundtrips_on_wire,
        "link_wall_clock_s": round(run.link_wall_clock_s, 4),
        "dedup_hits": run.dedup_hits,
        "delta_memo_hits": run.delta_memo_hits,
        "delta_memo_misses": run.delta_memo_misses,
        "sibling_refs_used": run.sibling_refs_used,
        "bytes_saved_vs_self_ref": run.bytes_saved_vs_self_ref,
    }
    for key, value in sorted(run.breakdown.items()):
        row[f"breakdown.{key}"] = value
    return row


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as CSV text (union of all keys, stable order)."""
    if not rows:
        return ""
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as pretty JSON."""
    return json.dumps([dict(row) for row in rows], indent=2, sort_keys=True)


def export_runs(
    runs: Sequence[CollectionRun],
    path: str | Path,
    fmt: str | None = None,
) -> Path:
    """Write runs to ``path``; format inferred from the suffix unless
    given explicitly (``"csv"`` or ``"json"``)."""
    path = Path(path)
    if fmt is None:
        fmt = path.suffix.lstrip(".").lower() or "csv"
    rows = [run_to_row(run) for run in runs]
    if fmt == "csv":
        payload = rows_to_csv(rows)
    elif fmt == "json":
        payload = rows_to_json(rows)
    else:
        raise ValueError(f"unsupported export format {fmt!r}")
    path.write_text(payload)
    return path
