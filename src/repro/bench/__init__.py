"""Benchmark harness: method adapters, collection runners, table/figure output.

Every method under evaluation (our protocol, rsync default/optimal, the
zdelta and vcdiff local delta coders, full transfer) is wrapped in a
:class:`~repro.bench.methods.SyncMethod` with uniform accounting so the
per-table benchmark scripts stay small.
"""

from repro.bench.methods import (
    AdaptiveMethod,
    FullTransferMethod,
    MethodOutcome,
    MultiroundRsyncMethod,
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    SyncMethod,
    VcdiffMethod,
    ZdeltaMethod,
    standard_methods,
)
from repro.bench.export import export_runs, run_to_row
from repro.bench.perfbaseline import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_PIPELINE_BASELINE_NAME,
    FingerprintProbeMethod,
    OpTiming,
    PerfBaseline,
    compare_baselines,
    load_baseline,
    measure,
    measure_pipeline,
    render_baseline,
    save_baseline,
)
from repro.bench.runner import CollectionRun, run_method_on_collection
from repro.bench.report import format_kb, render_grouped_bars, render_table
from repro.bench.soak import (
    DEFAULT_SEEDS,
    DEFAULT_SHAPES,
    SOAK_PROFILES,
    SoakReport,
    SoakRow,
    run_soak,
)

__all__ = [
    "AdaptiveMethod",
    "CollectionRun",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_PIPELINE_BASELINE_NAME",
    "DEFAULT_SEEDS",
    "DEFAULT_SHAPES",
    "SOAK_PROFILES",
    "SoakReport",
    "SoakRow",
    "FingerprintProbeMethod",
    "FullTransferMethod",
    "MethodOutcome",
    "MultiroundRsyncMethod",
    "OpTiming",
    "OursMethod",
    "PerfBaseline",
    "RsyncMethod",
    "RsyncOptimalMethod",
    "SyncMethod",
    "VcdiffMethod",
    "ZdeltaMethod",
    "compare_baselines",
    "export_runs",
    "format_kb",
    "load_baseline",
    "measure",
    "measure_pipeline",
    "render_baseline",
    "render_grouped_bars",
    "render_table",
    "run_method_on_collection",
    "run_soak",
    "run_to_row",
    "save_baseline",
    "standard_methods",
]
