"""Perf-regression baseline for the parallel substrate (BENCH_parallel.json).

The paper's closing note (§6.2) concedes the prototype "runs at a speed
of up to a few MB of raw data per second" — CPU throughput, not wire
bytes, is the deployment bottleneck.  This harness pins that throughput
down so it cannot silently regress: it times the core substrate ops
(vectorised window-hash scan, rsync token matching, zdelta encoding, the
end-to-end protocol) and the collection executor's two dispatch
substrates (zero-copy shared-memory arena vs. classic pickle) on fixed
seeded workloads, then writes or compares a JSON baseline.

The executor measurement uses a fingerprint *probe* method — it MD5s
both payloads and nothing else — so the number isolates the dispatch
substrate itself (serialization, page traffic, scheduling) rather than
protocol compute.  Timings are best-of-``rounds`` wall clock, which is
the steady-state figure the arena pool is designed for.

Baselines are machine-specific: compare runs against a baseline recorded
on comparable hardware and use a generous tolerance in CI (the committed
file records the reference machine's numbers).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.syncmethod import MethodOutcome, SyncMethod

#: Format marker for BENCH_parallel.json / BENCH_delta.json.
SCHEMA_VERSION = 1

#: Repo-root baseline file name (the committed trajectory point).
DEFAULT_BASELINE_NAME = "BENCH_parallel.json"

#: Committed baseline for the delta-encode throughput gate.
DEFAULT_DELTA_BASELINE_NAME = "BENCH_delta.json"

#: Committed baseline for the protocol-engine throughput gate.
DEFAULT_PROTOCOL_BASELINE_NAME = "BENCH_protocol.json"

#: Committed baseline for the pipelined-scheduler latency gate.
DEFAULT_PIPELINE_BASELINE_NAME = "BENCH_pipeline.json"

#: Committed baseline for the cross-file reuse gate (DESIGN §17).
DEFAULT_REUSE_BASELINE_NAME = "BENCH_reuse.json"

#: Seeded workload defaults: 64 changed files, ~48 MB of payload.
DEFAULT_FILES = 64
DEFAULT_FILE_KB = 384
DEFAULT_WORKERS = 4
DEFAULT_ROUNDS = 3
DEFAULT_SEED = 20240806

#: Delta-throughput workload defaults: 64 reference/target pairs whose
#: targets interleave copied and novel regions (the profile where the
#: per-byte scalar loop is the bottleneck — see ISSUE 5 / DESIGN §12).
DEFAULT_DELTA_FILE_KB = 96
#: Files the scalar oracle is timed on.  MB/s normalises by payload, so
#: a subset keeps the (much slower) scalar measurement CI-affordable
#: while the vectorized engine is timed on the full workload.
DEFAULT_SCALAR_FILES = 4

#: End-to-end protocol runs are expensive (a full multi-round sync per
#: file), so the protocol gate times a single cold-cache pass per engine.
DEFAULT_PROTOCOL_ROUNDS = 1

#: Pipeline-latency workload: 64 small changed files over a 300 ms-RTT
#: link.  The gate compares *modelled* link wall clock (bytes plus
#: latency times direction reversals) so the number is machine-independent
#: — small files keep the protocol compute CI-affordable.
DEFAULT_PIPELINE_FILE_KB = 24
DEFAULT_PIPELINE_WINDOW = 8
DEFAULT_PIPELINE_LATENCY_S = 0.150

#: Cross-file reuse workload: an 8-client fleet at mixed staleness
#: pulling one ~24 KB-mean-file collection.  The gate compares the cold
#: (fresh memo) and warm (fleet-primed memo) wall clock of serving the
#: last client, plus total fleet wire bytes with and without sibling
#: references.
DEFAULT_REUSE_CLIENTS = 8
DEFAULT_REUSE_FILES = 12
DEFAULT_REUSE_VERSIONS = 4
DEFAULT_REUSE_FILE_KB = 24

#: Comparison tolerance: an op regresses when it is slower than
#: ``committed * (1 + tolerance)``.  0.5 locally; CI uses 2.0 (3x).
DEFAULT_TOLERANCE = 0.5


class FingerprintProbeMethod(SyncMethod):
    """Reads every payload byte (MD5) and does nothing else.

    The cheapest *honest* per-file method: every byte of ``old`` and
    ``new`` is touched exactly once, so executor timings measure the
    dispatch substrate, not protocol compute.
    """

    name = "fingerprint-probe"
    supports_pickle = True

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        digest_bytes = len(hashlib.md5(old).digest()) + len(
            hashlib.md5(new).digest()
        )
        return MethodOutcome(
            total_bytes=digest_bytes,
            server_to_client=digest_bytes,
            breakdown={"s2c/probe": digest_bytes},
        )


@dataclass
class OpTiming:
    """Best-of-rounds timing of one substrate operation."""

    name: str
    seconds: float
    payload_bytes: int
    rounds: int

    @property
    def mb_per_s(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.payload_bytes / self.seconds / 1e6

    def to_row(self) -> dict[str, object]:
        return {
            "seconds": round(self.seconds, 6),
            "mb_per_s": round(self.mb_per_s, 3),
            "payload_bytes": self.payload_bytes,
            "rounds": self.rounds,
        }

    @classmethod
    def from_row(cls, name: str, row: dict) -> "OpTiming":
        return cls(
            name=name,
            seconds=float(row["seconds"]),
            payload_bytes=int(row["payload_bytes"]),
            rounds=int(row.get("rounds", 1)),
        )


@dataclass
class PerfBaseline:
    """One full measurement of the substrate (the BENCH_parallel row)."""

    workload: dict[str, int]
    ops: dict[str, OpTiming]
    environment: dict[str, object] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @property
    def arena_speedup(self) -> float:
        """Collection-sync dispatch speedup: pickle time / arena time."""
        pickle_op = self.ops.get("executor_pickle")
        arena_op = self.ops.get("executor_arena")
        if pickle_op is None or arena_op is None or arena_op.seconds <= 0:
            return 0.0
        return pickle_op.seconds / arena_op.seconds

    @property
    def delta_speedup(self) -> float:
        """Delta-match speedup: vectorized MB/s over scalar MB/s.

        Throughput-based (not raw seconds) because the scalar oracle is
        timed on a payload subset of the same workload.
        """
        scalar_op = self.ops.get("delta_match_scalar")
        vector_op = self.ops.get("delta_match_vectorized")
        if scalar_op is None or vector_op is None or scalar_op.mb_per_s <= 0:
            return 0.0
        return vector_op.mb_per_s / scalar_op.mb_per_s

    @property
    def pipeline_speedup(self) -> float:
        """Latency-hiding factor: sequential link wall clock / pipelined.

        Both ops record *modelled* link wall clock on the same workload
        and link, so the ratio is deterministic and machine-independent.
        """
        sequential_op = self.ops.get("collection_sequential")
        pipelined_op = self.ops.get("collection_pipelined")
        if (
            sequential_op is None
            or pipelined_op is None
            or pipelined_op.seconds <= 0
        ):
            return 0.0
        return sequential_op.seconds / pipelined_op.seconds

    @property
    def protocol_speedup(self) -> float:
        """Whole-round engine speedup: vectorized MB/s over scalar MB/s.

        Throughput-based (not raw seconds) because the scalar oracle is
        timed on a payload subset of the same workload.
        """
        scalar_op = self.ops.get("protocol_sync_scalar")
        vector_op = self.ops.get("protocol_sync_vectorized")
        if scalar_op is None or vector_op is None or scalar_op.mb_per_s <= 0:
            return 0.0
        return vector_op.mb_per_s / scalar_op.mb_per_s

    @property
    def reuse_speedup(self) -> float:
        """Nth-client memo speedup: cold serve wall clock / warm.

        Both ops serve the *same* client's update from the same fleet
        workload; the only difference is whether the delta memo cache
        was primed by the rest of the fleet first.
        """
        cold_op = self.ops.get("broadcast_cold_client")
        warm_op = self.ops.get("broadcast_warm_client")
        if cold_op is None or warm_op is None or warm_op.seconds <= 0:
            return 0.0
        return cold_op.seconds / warm_op.seconds

    @property
    def sibling_wire_savings(self) -> float:
        """Fleet wire-byte fraction saved by sibling references.

        Deterministic: both ops record total fleet wire bytes (as their
        payload) on the same workload, with the sibling path on and off.
        """
        full_op = self.ops.get("broadcast_wire_full")
        sibling_op = self.ops.get("broadcast_wire_sibling")
        if full_op is None or sibling_op is None or full_op.payload_bytes <= 0:
            return 0.0
        return 1.0 - sibling_op.payload_bytes / full_op.payload_bytes

    def to_json(self) -> str:
        derived: dict[str, float] = {}
        if self.arena_speedup:
            derived["executor_arena_speedup"] = round(self.arena_speedup, 3)
        if self.delta_speedup:
            derived["delta_vectorized_speedup"] = round(self.delta_speedup, 3)
        if self.protocol_speedup:
            derived["protocol_vectorized_speedup"] = round(
                self.protocol_speedup, 3
            )
        if self.pipeline_speedup:
            derived["pipeline_latency_speedup"] = round(
                self.pipeline_speedup, 3
            )
        if self.reuse_speedup:
            derived["reuse_memo_speedup"] = round(self.reuse_speedup, 3)
        if self.sibling_wire_savings:
            derived["sibling_wire_savings"] = round(
                self.sibling_wire_savings, 4
            )
        payload = {
            "schema": self.schema,
            "workload": dict(self.workload),
            "environment": dict(self.environment),
            "ops": {name: op.to_row() for name, op in sorted(self.ops.items())},
            "derived": derived,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "PerfBaseline":
        payload = json.loads(text)
        return cls(
            schema=int(payload.get("schema", 0)),
            workload={k: int(v) for k, v in payload["workload"].items()},
            environment=dict(payload.get("environment", {})),
            ops={
                name: OpTiming.from_row(name, row)
                for name, row in payload["ops"].items()
            },
        )


def save_baseline(baseline: PerfBaseline, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(baseline.to_json())
    return path


def load_baseline(path: str | Path) -> PerfBaseline:
    return PerfBaseline.from_json(Path(path).read_text())


def compare_baselines(
    current: PerfBaseline,
    committed: PerfBaseline,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression report: ops slower than ``committed * (1 + tolerance)``.

    Returns human-readable findings (empty = no regression).  Ops present
    only on one side are skipped — the baseline schema may grow.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    findings: list[str] = []
    for name, committed_op in sorted(committed.ops.items()):
        current_op = current.ops.get(name)
        if current_op is None or committed_op.seconds <= 0:
            continue
        budget = committed_op.seconds * (1.0 + tolerance)
        if current_op.seconds > budget:
            findings.append(
                f"{name}: {current_op.seconds:.4f}s exceeds "
                f"{committed_op.seconds:.4f}s baseline "
                f"(+{tolerance:.0%} budget = {budget:.4f}s)"
            )
    return findings


# ----------------------------------------------------------------------
# Workload construction (seeded, deterministic)
# ----------------------------------------------------------------------
def build_workload(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_FILE_KB,
    edits: int = 12,
    seed: int = DEFAULT_SEED,
) -> tuple[dict[str, bytes], dict[str, bytes]]:
    """``files`` distinct pseudo-random file pairs, every file changed."""
    rng = random.Random(seed)
    size = file_kb * 1024
    old_side: dict[str, bytes] = {}
    new_side: dict[str, bytes] = {}
    for index in range(files):
        old = rng.randbytes(size)
        new = bytearray(old)
        for _ in range(edits):
            at = rng.randrange(max(1, size - 256))
            new[at : at + 64] = rng.randbytes(96)
        name = f"f{index:03d}.bin"
        old_side[name] = old
        new_side[name] = bytes(new)
    return old_side, new_side


def build_delta_workload(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_DELTA_FILE_KB,
    seed: int = DEFAULT_SEED,
) -> list[tuple[bytes, bytes]]:
    """``files`` reference/target pairs with interleaved shared and novel runs.

    Each target alternates copied reference regions (2–8 KB, what real
    version chains share) with novel random runs (1–4 KB, what the
    matcher must emit as literals) — roughly 40% novel bytes overall.
    Novel runs are where the scalar loop pays two binary searches per
    byte, so this is the profile the delta-throughput gate watches.
    """
    rng = random.Random(seed)
    size = file_kb * 1024
    pairs: list[tuple[bytes, bytes]] = []
    for _ in range(files):
        reference = rng.randbytes(size)
        target = bytearray()
        position = 0
        while position < size:
            copy_length = rng.randrange(2048, 8192)
            target += reference[position : position + copy_length]
            position += copy_length
            target += rng.randbytes(rng.randrange(1024, 4096))
        pairs.append((reference, bytes(target)))
    return pairs


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def measure(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_FILE_KB,
    workers: int = DEFAULT_WORKERS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> PerfBaseline:
    """Time every substrate op on the seeded workload; return the record.

    End-to-end protocol throughput is *not* measured here: the dedicated
    per-engine gate (:func:`measure_protocol` / BENCH_protocol.json)
    superseded the old single-engine ``protocol_sync`` op.
    """
    from repro.delta import zdelta_encode
    from repro.hashing import DecomposableAdler, window_hashes
    from repro.parallel import FileTask, SyncExecutor, arena_available
    from repro.rsync import compute_signatures, match_tokens

    old_side, new_side = build_workload(files=files, file_kb=file_kb, seed=seed)
    tasks = [
        FileTask(name, old_side[name], new_side[name]) for name in old_side
    ]
    payload = sum(task.total_bytes for task in tasks)
    ops: dict[str, OpTiming] = {}

    def record(name: str, seconds: float, nbytes: int, used_rounds: int) -> None:
        ops[name] = OpTiming(name, seconds, nbytes, used_rounds)

    # --- core substrate micro-ops on one representative pair ----------
    sample_old = tasks[0].old
    sample_new = tasks[0].new
    hasher = DecomposableAdler(seed=1)

    scan_rounds = max(rounds, 3)
    record(
        "window_hash_scan",
        _best_of(scan_rounds, lambda: window_hashes(sample_old, 64, hasher)),
        len(sample_old),
        scan_rounds,
    )

    signatures = compute_signatures(sample_old, 700)
    record(
        "match_tokens",
        _best_of(rounds, lambda: match_tokens(sample_new, signatures, 2)),
        len(sample_new),
        rounds,
    )

    delta_old = sample_old[: 128 * 1024]
    delta_new = sample_new[: 128 * 1024]
    record(
        "zdelta_encode",
        _best_of(rounds, lambda: zdelta_encode(delta_old, delta_new)),
        len(delta_new),
        rounds,
    )

    # --- collection-sync dispatch: pickle vs zero-copy arena ----------
    probe = FingerprintProbeMethod()

    pickle_executor = SyncExecutor(workers=workers, use_arena=False)
    record(
        "executor_pickle",
        _best_of(rounds, lambda: pickle_executor.run(probe, tasks)),
        payload,
        rounds,
    )

    if arena_available():
        arena_executor = SyncExecutor(workers=workers, use_arena=True)
        sample_batch = arena_executor.run(probe, tasks)
        if sample_batch.arena_used:
            record(
                "executor_arena",
                _best_of(rounds, lambda: arena_executor.run(probe, tasks)),
                payload,
                rounds,
            )

    environment = {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "arena_available": arena_available(),
    }
    workload = {
        "files": files,
        "file_kb": file_kb,
        "workers": workers,
        "rounds": rounds,
        "seed": seed,
    }
    return PerfBaseline(workload=workload, ops=ops, environment=environment)


def measure_delta(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_DELTA_FILE_KB,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
    scalar_files: int = DEFAULT_SCALAR_FILES,
) -> PerfBaseline:
    """Time the delta-matching engines on the seeded mixed workload.

    Three ops make up the BENCH_delta record:

    * ``delta_index_build`` — ``ReferenceMatcher`` construction (the
      cost the :class:`~repro.parallel.cache.ReferenceIndexCache`
      amortises away on repeated references);
    * ``delta_match_vectorized`` — the batched engine over every pair;
    * ``delta_match_scalar`` — the oracle loop over the first
      ``scalar_files`` pairs (MB/s normalises by payload).

    Matchers are prebuilt so both engines time the matching loop itself,
    not index construction; payload counts *target* bytes matched.
    """
    from repro.delta.matcher import ReferenceMatcher, compute_instructions

    pairs = build_delta_workload(files=files, file_kb=file_kb, seed=seed)
    matchers = [ReferenceMatcher(reference) for reference, _target in pairs]
    ops: dict[str, OpTiming] = {}

    build_rounds = max(1, rounds - 1)
    ops["delta_index_build"] = OpTiming(
        "delta_index_build",
        _best_of(
            build_rounds,
            lambda: ReferenceMatcher(pairs[0][0]),
        ),
        len(pairs[0][0]),
        build_rounds,
    )

    def run_engine(engine: str, count: int) -> None:
        for (reference, target), matcher in zip(pairs[:count], matchers[:count]):
            compute_instructions(
                reference, target, matcher=matcher, engine=engine
            )

    ops["delta_match_vectorized"] = OpTiming(
        "delta_match_vectorized",
        _best_of(rounds, lambda: run_engine("vectorized", files)),
        sum(len(target) for _reference, target in pairs),
        rounds,
    )

    scalar_files = max(1, min(scalar_files, files))
    scalar_rounds = max(1, rounds - 1)
    ops["delta_match_scalar"] = OpTiming(
        "delta_match_scalar",
        _best_of(scalar_rounds, lambda: run_engine("scalar", scalar_files)),
        sum(len(target) for _reference, target in pairs[:scalar_files]),
        scalar_rounds,
    )

    environment = {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    workload = {
        "files": files,
        "file_kb": file_kb,
        "rounds": rounds,
        "seed": seed,
        "scalar_files": scalar_files,
    }
    return PerfBaseline(workload=workload, ops=ops, environment=environment)


def measure_protocol(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_DELTA_FILE_KB,
    rounds: int = DEFAULT_PROTOCOL_ROUNDS,
    seed: int = DEFAULT_SEED,
    scalar_files: int = DEFAULT_SCALAR_FILES,
) -> PerfBaseline:
    """Time the whole-round protocol engines on the seeded mixed workload.

    Two ops make up the BENCH_protocol record:

    * ``protocol_sync_vectorized`` — end-to-end :func:`repro.core.synchronize`
      with the batched engine over every pair;
    * ``protocol_sync_scalar`` — the scalar parity oracle over the first
      ``scalar_files`` pairs (MB/s normalises by payload).

    Each timed pass starts from a cold :func:`~repro.parallel.cache.
    default_cache` — the shared content-keyed :class:`HashIndexCache`
    would otherwise hand whichever engine runs second prebuilt indexes
    and corrupt the ratio.
    """
    from repro.core import ProtocolConfig, synchronize
    from repro.parallel.cache import reset_default_cache

    pairs = build_delta_workload(files=files, file_kb=file_kb, seed=seed)
    config = ProtocolConfig()
    ops: dict[str, OpTiming] = {}

    def run_engine(engine: str, count: int) -> None:
        reset_default_cache()
        for reference, target in pairs[:count]:
            synchronize(reference, target, config, engine=engine)

    rounds = max(1, rounds)
    ops["protocol_sync_vectorized"] = OpTiming(
        "protocol_sync_vectorized",
        _best_of(rounds, lambda: run_engine("vectorized", files)),
        sum(len(target) for _reference, target in pairs),
        rounds,
    )

    scalar_files = max(1, min(scalar_files, files))
    ops["protocol_sync_scalar"] = OpTiming(
        "protocol_sync_scalar",
        _best_of(rounds, lambda: run_engine("scalar", scalar_files)),
        sum(len(target) for _reference, target in pairs[:scalar_files]),
        rounds,
    )
    reset_default_cache()

    environment = {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    workload = {
        "files": files,
        "file_kb": file_kb,
        "rounds": rounds,
        "seed": seed,
        "scalar_files": scalar_files,
    }
    return PerfBaseline(workload=workload, ops=ops, environment=environment)


def measure_pipeline(
    files: int = DEFAULT_FILES,
    file_kb: int = DEFAULT_PIPELINE_FILE_KB,
    window: int = DEFAULT_PIPELINE_WINDOW,
    seed: int = DEFAULT_SEED,
    latency_s: float = DEFAULT_PIPELINE_LATENCY_S,
) -> PerfBaseline:
    """Measure the pipelined scheduler's latency hiding (BENCH_pipeline).

    Runs the same seeded 64-file workload through
    :func:`~repro.collection.sync.sync_collection` twice with the
    paper's protocol — sequentially and pipelined with ``window`` files
    in flight — over a ``latency_s`` one-way-delay link (0.150 s = a
    300 ms-RTT slow network).  Each op records the *modelled* link wall
    clock as its timing and the wire direction reversals as its round
    count, so the record (and the derived ``pipeline_latency_speedup``)
    is fully deterministic: byte counts and reversal counts do not
    depend on the machine.
    """
    from repro.bench.methods import OursMethod
    from repro.collection.sync import sync_collection
    from repro.net.channel import LinkModel

    old_side, new_side = build_workload(files=files, file_kb=file_kb, seed=seed)
    payload = sum(len(data) for data in new_side.values())
    link = LinkModel(latency_s=latency_s)
    ops: dict[str, OpTiming] = {}

    sequential = sync_collection(
        old_side, new_side, OursMethod(), link=link
    )
    ops["collection_sequential"] = OpTiming(
        "collection_sequential",
        sequential.link_wall_clock_s,
        payload,
        sequential.roundtrips_on_wire,
    )

    pipelined = sync_collection(
        old_side,
        new_side,
        OursMethod(),
        link=link,
        pipeline=True,
        window=window,
    )
    ops["collection_pipelined"] = OpTiming(
        "collection_pipelined",
        pipelined.link_wall_clock_s,
        payload,
        pipelined.roundtrips_on_wire,
    )

    environment = {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    workload = {
        "files": files,
        "file_kb": file_kb,
        "window": window,
        "seed": seed,
        "latency_ms": int(latency_s * 1000),
    }
    return PerfBaseline(workload=workload, ops=ops, environment=environment)


def measure_reuse(
    clients: int = DEFAULT_REUSE_CLIENTS,
    files: int = DEFAULT_REUSE_FILES,
    versions: int = DEFAULT_REUSE_VERSIONS,
    file_kb: int = DEFAULT_REUSE_FILE_KB,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> PerfBaseline:
    """Measure the cross-file reuse layer on the fleet workload.

    Four ops make up the BENCH_reuse record:

    * ``broadcast_cold_client`` — serving the last fleet client from a
      freshly-built :class:`~repro.reuse.broadcast.BroadcastDeltaServer`
      (empty memo: every delta computed from scratch);
    * ``broadcast_warm_client`` — serving the *same* client after the
      rest of the fleet primed the shared memo cache (the steady-state
      Nth-client cost the layer is designed for);
    * ``broadcast_wire_sibling`` / ``broadcast_wire_full`` — total fleet
      wire bytes (recorded as the payload) with the sibling-reference
      path on and off; their ratio is the deterministic
      ``sibling_wire_savings``.

    The derived ``reuse_memo_speedup`` is cold over warm wall clock.
    """
    from repro.reuse import BroadcastDeltaServer, DedupStore, DeltaMemoCache
    from repro.workloads.fleet import make_fleet

    fleet = make_fleet(
        clients=clients,
        files=files,
        versions=versions,
        seed=seed,
        mean_size=file_kb * 1024,
    )
    last_client = fleet.clients[-1].files
    payload = sum(len(data) for data in fleet.server.values())
    ops: dict[str, OpTiming] = {}

    def fresh_server(resemblance_threshold: float = 0.5) -> BroadcastDeltaServer:
        server = BroadcastDeltaServer(
            fleet.server,
            memo=DeltaMemoCache(),
            dedup=DedupStore(),
            resemblance_threshold=resemblance_threshold,
        )
        for version in fleet.versions[:-1]:
            server.ingest_history(version)
        return server

    rounds = max(1, rounds)
    cold_best = float("inf")
    for _ in range(rounds):
        server = fresh_server()
        started = time.perf_counter()
        server.serve(last_client)
        cold_best = min(cold_best, time.perf_counter() - started)
    ops["broadcast_cold_client"] = OpTiming(
        "broadcast_cold_client", cold_best, payload, rounds
    )

    warm_server = fresh_server()
    for client in fleet.clients:
        warm_server.serve(client.files)
    ops["broadcast_warm_client"] = OpTiming(
        "broadcast_warm_client",
        _best_of(rounds, lambda: warm_server.serve(last_client)),
        payload,
        rounds,
    )

    for op_name, threshold in (
        ("broadcast_wire_sibling", 0.5),
        ("broadcast_wire_full", 2.0),  # nothing resembles above 1.0
    ):
        server = fresh_server(resemblance_threshold=threshold)
        started = time.perf_counter()
        wire = sum(
            server.serve(client.files).wire_bytes for client in fleet.clients
        )
        ops[op_name] = OpTiming(
            op_name, time.perf_counter() - started, wire, 1
        )

    environment = {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    workload = {
        "clients": clients,
        "files": files,
        "versions": versions,
        "file_kb": file_kb,
        "rounds": rounds,
        "seed": seed,
    }
    return PerfBaseline(workload=workload, ops=ops, environment=environment)


def render_baseline(baseline: PerfBaseline) -> str:
    """Terminal table of one measurement (CLI + benchmark output)."""
    from repro.bench.report import render_table

    rows = []
    for name, op in sorted(baseline.ops.items()):
        rows.append(
            [
                name,
                f"{op.seconds * 1000:.1f}",
                f"{op.mb_per_s:,.1f}",
                f"{op.payload_bytes / 1024:,.0f}",
                str(op.rounds),
            ]
        )
    title = (
        f"perf baseline — {baseline.workload['files']} files × "
        f"{baseline.workload['file_kb']} KB"
    )
    if "workers" in baseline.workload:
        title += f", workers={baseline.workload['workers']}"
    arena = baseline.arena_speedup
    if arena:
        title += f"; arena speedup {arena:.2f}x over pickle dispatch"
    delta = baseline.delta_speedup
    if delta:
        title += f"; vectorized delta match {delta:.2f}x over scalar"
    protocol = baseline.protocol_speedup
    if protocol:
        title += f"; vectorized protocol {protocol:.2f}x over scalar"
    pipeline = baseline.pipeline_speedup
    if pipeline:
        title += f"; pipelined wall clock {pipeline:.2f}x over sequential"
    reuse = baseline.reuse_speedup
    if reuse:
        title += f"; warm memo serve {reuse:.2f}x over cold"
    savings = baseline.sibling_wire_savings
    if savings:
        title += f"; sibling refs save {savings:.1%} of fleet wire bytes"
    return render_table(
        ["op", "ms (best)", "MB/s", "payload KB", "rounds"], rows, title=title
    )
