"""The per-file synchronization method interface.

Neutral home for the types shared by the collection layer (which drives a
method over many files) and the benchmark harness (which defines the
concrete adapters) — keeping those two packages import-cycle free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


@dataclass
class MethodOutcome:
    """Bandwidth accounting for one file synchronised by one method."""

    total_bytes: int
    client_to_server: int = 0
    server_to_client: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    correct: bool = True

    def __add__(self, other: "MethodOutcome") -> "MethodOutcome":
        merged = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged[key] = merged.get(key, 0) + value
        return MethodOutcome(
            total_bytes=self.total_bytes + other.total_bytes,
            client_to_server=self.client_to_server + other.client_to_server,
            server_to_client=self.server_to_client + other.server_to_client,
            breakdown=merged,
            correct=self.correct and other.correct,
        )


class SyncMethod(ABC):
    """One row of the paper's comparison tables."""

    name: str

    @abstractmethod
    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair; return the transfer accounting."""
