"""The per-file synchronization method interface.

Neutral home for the types shared by the collection layer (which drives a
method over many files) and the benchmark harness (which defines the
concrete adapters) — keeping those two packages import-cycle free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


@dataclass
class MethodOutcome:
    """Bandwidth accounting for one file synchronised by one method.

    The resilience fields default to "nothing went wrong" so outcomes
    from a clean run are unchanged: ``retries`` counts failed attempts
    that preceded this result, ``fallback_method`` names the ladder rung
    that finally succeeded (``None`` = the primary method),
    ``retransmitted_bytes`` is the wire cost of the failed attempts and
    ``recovery_seconds`` the estimated wall-clock they burnt (backoff
    plus wasted transfer time on the configured link).

    The checkpoint fields likewise stay zero unless a supervisor ran
    with durable round checkpoints: ``rounds_salvaged`` counts protocol
    rounds a resume skipped instead of re-buying, ``resume_handshake_bits``
    the wire cost of agreeing to resume, and ``checkpoint_bytes_written``
    the *local* journal bytes fsynced (disk cost, never wire cost).

    The adaptive fields describe the health-aware layer (DESIGN §14) and
    default to "perfect link, nothing adapted": ``health_score`` is the
    windowed link-health estimate after this file (1.0 = pristine;
    merged with ``min`` so an aggregate reflects the worst link seen),
    ``breaker_opens`` counts circuit-breaker trips, ``deadline_salvages``
    checkpointed rounds preserved by a deadline breach, and
    ``adaptive_backoff_s`` the simulated seconds the AIMD schedule spent
    waiting (a subset of ``recovery_seconds``).

    The integrity fields stay zero unless the whole-file fingerprint
    rejected a reconstruction: ``collisions_detected`` counts those
    rejections, ``repair_rounds`` the group-digest descent roundtrips
    spent localizing them, and ``repair_bytes`` the wire bytes of the
    surgical repair exchanges (already included in ``total_bytes``).
    """

    total_bytes: int
    client_to_server: int = 0
    server_to_client: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    correct: bool = True
    retries: int = 0
    fallback_method: str | None = None
    retransmitted_bytes: int = 0
    recovery_seconds: float = 0.0
    rounds_salvaged: int = 0
    resume_handshake_bits: int = 0
    checkpoint_bytes_written: int = 0
    health_score: float = 1.0
    breaker_opens: int = 0
    deadline_salvages: int = 0
    adaptive_backoff_s: float = 0.0
    collisions_detected: int = 0
    repair_rounds: int = 0
    repair_bytes: int = 0
    roundtrips: int = 0
    #: Reuse-layer accounting (DESIGN §17), zero unless a sibling
    #: reference served where only a literal transfer was possible:
    #: ``sibling_refs_used`` counts files delta-coded against a similar
    #: sibling instead of sent in full, ``bytes_saved_vs_self_ref`` the
    #: wire bytes that choice saved versus the self-reference-only
    #: baseline (a compressed full transfer).
    sibling_refs_used: int = 0
    bytes_saved_vs_self_ref: int = 0

    def __add__(self, other: "MethodOutcome") -> "MethodOutcome":
        merged = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged[key] = merged.get(key, 0) + value
        return MethodOutcome(
            total_bytes=self.total_bytes + other.total_bytes,
            client_to_server=self.client_to_server + other.client_to_server,
            server_to_client=self.server_to_client + other.server_to_client,
            breakdown=merged,
            correct=self.correct and other.correct,
            retries=self.retries + other.retries,
            fallback_method=self.fallback_method or other.fallback_method,
            retransmitted_bytes=(
                self.retransmitted_bytes + other.retransmitted_bytes
            ),
            recovery_seconds=self.recovery_seconds + other.recovery_seconds,
            rounds_salvaged=self.rounds_salvaged + other.rounds_salvaged,
            resume_handshake_bits=(
                self.resume_handshake_bits + other.resume_handshake_bits
            ),
            checkpoint_bytes_written=(
                self.checkpoint_bytes_written + other.checkpoint_bytes_written
            ),
            health_score=min(self.health_score, other.health_score),
            breaker_opens=self.breaker_opens + other.breaker_opens,
            deadline_salvages=self.deadline_salvages + other.deadline_salvages,
            adaptive_backoff_s=(
                self.adaptive_backoff_s + other.adaptive_backoff_s
            ),
            collisions_detected=(
                self.collisions_detected + other.collisions_detected
            ),
            repair_rounds=self.repair_rounds + other.repair_rounds,
            repair_bytes=self.repair_bytes + other.repair_bytes,
            roundtrips=self.roundtrips + other.roundtrips,
            sibling_refs_used=(
                self.sibling_refs_used + other.sibling_refs_used
            ),
            bytes_saved_vs_self_ref=(
                self.bytes_saved_vs_self_ref + other.bytes_saved_vs_self_ref
            ),
        )


def wire_outcome(result, new: bytes) -> MethodOutcome:
    """Flatten a protocol result (with ``.stats``) into a MethodOutcome.

    ``result`` is a :class:`~repro.core.protocol.SyncResult` or
    :class:`~repro.multiround.protocol.MultiroundResult` — anything with
    ``reconstructed``, ``total_bytes`` and a
    :class:`~repro.net.metrics.TransferStats` ``stats``.  The integrity
    fields exist only on the rsync/multiround results (the stacks with
    surgical repair); ``getattr`` keeps the core protocol's result
    compatible.  A protocol-internal full-transfer fallback reclassifies
    its traffic into ``stats.retransmitted_bits``, which must survive
    the flattening even without a supervisor around.  Lives here (not in
    ``bench.methods``) so the pipelined collection scheduler can account
    per-file sessions without importing the benchmark harness.
    """
    return MethodOutcome(
        total_bytes=result.total_bytes,
        client_to_server=result.stats.client_to_server_bytes,
        server_to_client=result.stats.server_to_client_bytes,
        breakdown=dict(result.stats.breakdown()),
        correct=result.reconstructed == new,
        retransmitted_bytes=result.stats.retransmitted_bytes,
        collisions_detected=getattr(result, "collisions_detected", 0),
        repair_rounds=getattr(result, "repair_rounds", 0),
        repair_bytes=getattr(result, "repair_bytes", 0),
        roundtrips=result.stats.roundtrips,
    )


class SyncMethod(ABC):
    """One row of the paper's comparison tables."""

    name: str
    #: True for methods whose protocol can snapshot round state into a
    #: :class:`~repro.resilience.checkpoint.SessionJournal` and resume
    #: from it (they then also implement ``checkpoint_identity`` and
    #: ``sync_file_resumable``).
    supports_checkpoint: bool = False
    #: Declares whether instances can cross a process boundary.  ``None``
    #: (default) makes the parallel executor probe with ``pickle.dumps``
    #: once per instance; final method classes that are known picklable
    #: set ``True`` to skip the probe entirely.  Subclasses that add
    #: unpicklable state (closures, open handles) must override this
    #: back to ``None`` or ``False``.
    supports_pickle: bool | None = None
    #: True for methods whose protocol is factored into a resumable
    #: step-wise session (``start``/``done``/``step_round``/``finish``)
    #: that the pipelined collection scheduler can drive round-by-round;
    #: they then also implement :meth:`open_session`.
    supports_pipeline: bool = False

    @abstractmethod
    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair; return the transfer accounting."""

    def open_session(self, old: bytes, new: bytes, checkpointer=None):
        """Build a step-wise protocol session for one file pair.

        Only meaningful when ``supports_pipeline`` is true.  The returned
        object exposes ``start(channel, resume_from=None)``, ``done``,
        ``step_round(channel)`` and ``finish(channel)`` with the exact
        wire traffic of the run-to-completion path, so a scheduler can
        interleave many files' rounds while keeping each file's
        transcript byte-identical to a sequential run.
        """
        raise NotImplementedError(
            f"{self.name} does not support pipelined scheduling"
        )

    def sync_named_file(self, name: str | None, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one *named* file pair.

        The collection layer calls this with the entry's name so wrappers
        keeping durable per-file state (checkpoint journals) can key it.
        The default ignores the name.
        """
        return self.sync_file(old, new)

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        """Synchronise one file pair over a caller-supplied channel.

        Wire methods override this to route their traffic through
        ``channel`` (a :class:`~repro.net.channel.SimulatedChannel`,
        possibly fault-injected) so a supervisor can observe and retry
        failures.  The default ignores the channel — correct for local
        methods (delta coders) that never touch the wire.
        """
        return self.sync_file(old, new)
