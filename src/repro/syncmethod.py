"""The per-file synchronization method interface.

Neutral home for the types shared by the collection layer (which drives a
method over many files) and the benchmark harness (which defines the
concrete adapters) — keeping those two packages import-cycle free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


@dataclass
class MethodOutcome:
    """Bandwidth accounting for one file synchronised by one method.

    The resilience fields default to "nothing went wrong" so outcomes
    from a clean run are unchanged: ``retries`` counts failed attempts
    that preceded this result, ``fallback_method`` names the ladder rung
    that finally succeeded (``None`` = the primary method),
    ``retransmitted_bytes`` is the wire cost of the failed attempts and
    ``recovery_seconds`` the estimated wall-clock they burnt (backoff
    plus wasted transfer time on the configured link).
    """

    total_bytes: int
    client_to_server: int = 0
    server_to_client: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    correct: bool = True
    retries: int = 0
    fallback_method: str | None = None
    retransmitted_bytes: int = 0
    recovery_seconds: float = 0.0

    def __add__(self, other: "MethodOutcome") -> "MethodOutcome":
        merged = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged[key] = merged.get(key, 0) + value
        return MethodOutcome(
            total_bytes=self.total_bytes + other.total_bytes,
            client_to_server=self.client_to_server + other.client_to_server,
            server_to_client=self.server_to_client + other.server_to_client,
            breakdown=merged,
            correct=self.correct and other.correct,
            retries=self.retries + other.retries,
            fallback_method=self.fallback_method or other.fallback_method,
            retransmitted_bytes=(
                self.retransmitted_bytes + other.retransmitted_bytes
            ),
            recovery_seconds=self.recovery_seconds + other.recovery_seconds,
        )


class SyncMethod(ABC):
    """One row of the paper's comparison tables."""

    name: str

    @abstractmethod
    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        """Synchronise one file pair; return the transfer accounting."""

    def sync_file_over(self, old: bytes, new: bytes, channel) -> MethodOutcome:
        """Synchronise one file pair over a caller-supplied channel.

        Wire methods override this to route their traffic through
        ``channel`` (a :class:`~repro.net.channel.SimulatedChannel`,
        possibly fault-injected) so a supervisor can observe and retry
        failures.  The default ignores the channel — correct for local
        methods (delta coders) that never touch the wire.
        """
        return self.sync_file(old, new)
