"""repro — multi-round file synchronization for large replicated collections.

A faithful, from-scratch reproduction of Suel, Noel & Trendafilov,
"Improved File Synchronization Techniques for Maintaining Large Replicated
Collections over Slow Networks" (ICDE 2004): the two-phase map-construction
+ delta framework with recursive splitting, group-testing match
verification, continuation/local hashes, and decomposable rolling hashes —
plus every substrate it needs (rsync baseline, zdelta/vcdiff-style delta
coders, a byte-exact simulated channel, and workload generators mirroring
the paper's data sets).

Quickstart::

    from repro import synchronize, ProtocolConfig

    result = synchronize(old_bytes, new_bytes, ProtocolConfig())
    assert result.reconstructed == new_bytes
    print(result.total_bytes, "bytes on the wire")
"""

from repro.collection import CollectionReport, sync_collection
from repro.core import ProtocolConfig, SyncResult, synchronize
from repro.delta import (
    vcdiff_decode,
    vcdiff_encode,
    zdelta_decode,
    zdelta_encode,
)
from repro.exceptions import (
    ChannelEmptyError,
    FrameCorruptionError,
    ReproError,
    SyncFailedError,
)
from repro.net import (
    Direction,
    FaultPlan,
    FaultyChannel,
    LinkModel,
    SimulatedChannel,
    TransferStats,
)
from repro.parallel import HashIndexCache, SyncExecutor, default_cache
from repro.resilience import RetryPolicy, SyncSupervisor
from repro.rsync import rsync_optimal, rsync_sync

__version__ = "1.0.0"

__all__ = [
    "ChannelEmptyError",
    "CollectionReport",
    "Direction",
    "FaultPlan",
    "FaultyChannel",
    "FrameCorruptionError",
    "HashIndexCache",
    "LinkModel",
    "ProtocolConfig",
    "ReproError",
    "RetryPolicy",
    "SimulatedChannel",
    "SyncExecutor",
    "SyncFailedError",
    "SyncResult",
    "SyncSupervisor",
    "TransferStats",
    "__version__",
    "default_cache",
    "rsync_optimal",
    "rsync_sync",
    "sync_collection",
    "synchronize",
    "vcdiff_decode",
    "vcdiff_encode",
    "zdelta_decode",
    "zdelta_encode",
]
