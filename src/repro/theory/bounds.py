"""Communication bounds for file synchronization, in bits.

Three reference curves frame every measurement in this repository:

* a counting **lower bound** for one-way document exchange: to let the
  client pick the right file out of every file within edit distance
  ``k`` of its own, the server must send at least ``log2 |B_k|`` bits,
  where ``|B_k| >= C(n, k) * (sigma - 1)**k`` is (a lower estimate of)
  the edit ball's size;
* the **rsync cost model** of §2.3: ``(n_old / b) * signature_bits``
  upstream plus roughly one block of literals per edit downstream, with
  the optimal block size ``b* = sqrt(n * signature_bits / k)`` — showing
  why the right block size needs knowledge of ``k`` that rsync does not
  have;
* the **multi-round upper bound** of the recursive-splitting family
  [10, 25, 34]: ``O(k * log(n/k) * log n)`` bits — each of the ``k``
  edit regions is isolated by a root-to-leaf path of ``log(n/k)``
  splits, each split costing ``O(log n)`` hash bits.
"""

from __future__ import annotations

import math


def _log2_binomial(n: int, k: int) -> float:
    """``log2(C(n, k))`` via lgamma (stable for large ``n``)."""
    if k < 0 or k > n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


def exchange_lower_bound_bits(
    file_length: int, edit_distance: int, alphabet: int = 256
) -> float:
    """Counting lower bound for one-way exchange under edit distance.

    Any protocol (even with unlimited interaction, for the one-way case)
    must distinguish all files within distance ``k``; substitutions alone
    give ``C(n, k) * (alphabet - 1)**k`` candidates.
    """
    if file_length < 0 or edit_distance < 0:
        raise ValueError("file_length and edit_distance must be non-negative")
    if edit_distance == 0 or file_length == 0:
        return 0.0
    k = min(edit_distance, file_length)
    return _log2_binomial(file_length, k) + k * math.log2(alphabet - 1)


def rsync_cost_model_bits(
    file_length: int,
    edit_count: int,
    block_size: int,
    signature_bits: int = 48,
    literal_bits_per_byte: float = 3.0,
) -> float:
    """§2.3's rsync trade-off: signatures up, damaged blocks down.

    Each edit destroys (at least) one block, which returns as compressed
    literals; ``literal_bits_per_byte`` models the gzip pass on text.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if file_length < 0 or edit_count < 0:
        raise ValueError("file_length and edit_count must be non-negative")
    signatures = math.ceil(file_length / block_size) * signature_bits
    damaged = min(edit_count * block_size, file_length)
    return signatures + damaged * literal_bits_per_byte


def optimal_rsync_block_size(
    file_length: int,
    edit_count: int,
    signature_bits: int = 48,
    literal_bits_per_byte: float = 3.0,
) -> int:
    """The block size minimising :func:`rsync_cost_model_bits`.

    ``b* = sqrt(n * f / (k * c))`` — which depends on the number of edits
    ``k``, the knowledge rsync's fixed default lacks (the gap between the
    "rsync" and "rsync-opt" rows of every table).
    """
    if edit_count <= 0:
        return max(file_length, 1)
    if file_length <= 0:
        return 1
    optimum = math.sqrt(
        file_length * signature_bits / (edit_count * literal_bits_per_byte)
    )
    return max(1, round(optimum))


def multiround_upper_bound_bits(
    file_length: int,
    edit_count: int,
    hash_bits: float | None = None,
) -> float:
    """Recursive-splitting upper bound ``O(k log(n/k) log n)``.

    ``hash_bits`` defaults to ``log2 n + O(1)`` per transmitted hash, the
    width the protocol actually uses.
    """
    if file_length < 0 or edit_count < 0:
        raise ValueError("file_length and edit_count must be non-negative")
    if file_length == 0 or edit_count == 0:
        return 0.0
    n = file_length
    k = min(edit_count, n)
    if hash_bits is None:
        hash_bits = math.log2(max(n, 2)) + 3
    path_length = math.log2(max(n / k, 2))
    # Two children hashed per split along each of k paths, plus the
    # verification reply (~the same order).
    return 2.0 * k * path_length * hash_bits * 2.0
