"""Similarity metrics: banded Levenshtein and block divergence.

The synchronization bounds are stated "with respect to common metrics
such as edit distance"; rsync famously has *no* good bound under plain
edit distance (one byte changed per block defeats it), which is what the
block-divergence measure captures.
"""

from __future__ import annotations

from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import window_hashes

_DIVERGENCE_HASHER = DecomposableAdler(seed=0xD1F)


def levenshtein(a: bytes, b: bytes, max_distance: int | None = None) -> int:
    """Unit-cost edit distance, optionally banded.

    With ``max_distance`` the computation is restricted to a diagonal
    band (Ukkonen's trick): if the true distance exceeds the budget,
    ``max_distance + 1`` is returned.  Complexity is ``O(min(n*m,
    n*max_distance))``.
    """
    if max_distance is not None and max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if a == b:
        return 0
    if not a:
        distance = len(b)
        if max_distance is not None and distance > max_distance:
            return max_distance + 1
        return distance
    if not b:
        distance = len(a)
        if max_distance is not None and distance > max_distance:
            return max_distance + 1
        return distance
    if max_distance is not None and abs(len(a) - len(b)) > max_distance:
        return max_distance + 1

    # Ensure the inner loop runs over the shorter string.
    if len(b) < len(a):
        a, b = b, a
    infinity = len(a) + len(b) + 1
    band = max_distance if max_distance is not None else infinity

    previous = list(range(len(a) + 1))
    for row in range(1, len(b) + 1):
        lo = max(1, row - band)
        hi = min(len(a), row + band)
        current = [infinity] * (len(a) + 1)
        current[0] = row if row <= band else infinity
        byte_b = b[row - 1]
        for column in range(lo, hi + 1):
            cost = 0 if a[column - 1] == byte_b else 1
            current[column] = min(
                previous[column] + 1,  # deletion
                current[column - 1] + 1,  # insertion
                previous[column - 1] + cost,  # substitution
            )
        if max_distance is not None and min(current[lo : hi + 1]) > band:
            return max_distance + 1
        previous = current
    distance = previous[len(a)]
    if max_distance is not None and distance > max_distance:
        return max_distance + 1
    return distance


def block_divergence(a: bytes, b: bytes, block_size: int = 64) -> float:
    """Fraction of ``b``'s blocks that appear nowhere in ``a``.

    A cheap, alignment-insensitive divergence estimate (the measure the
    map-construction phase effectively optimises): 0.0 for identical
    content, 1.0 for disjoint content.  Uses full 32-bit window hashes,
    so false matches are negligible at benchmark scales.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if not b:
        return 0.0
    if len(a) < block_size:
        return 1.0
    reference = set(window_hashes(a, block_size, _DIVERGENCE_HASHER).tolist())
    missing = 0
    blocks = 0
    for start in range(0, len(b) - block_size + 1, block_size):
        blocks += 1
        block_hash = _DIVERGENCE_HASHER.hash_block(b[start : start + block_size])
        packed = block_hash.a | (block_hash.b << 16)
        if packed not in reference:
            missing += 1
    if blocks == 0:
        return 1.0
    return missing / blocks
