"""Theory companion: similarity metrics and communication bounds.

The paper closes with "we are working on improved asymptotic bounds for
file synchronization under some common file similarity metrics" and
grounds its related-work discussion in the communication-complexity view
of the problem (document exchange, Orlitsky's interactive bounds).  This
package provides the executable side of that discussion:

* :mod:`repro.theory.editdistance` — banded Levenshtein distance and a
  block-move-aware divergence estimate, the metrics the bounds talk
  about;
* :mod:`repro.theory.bounds` — counting lower bounds for one-way
  document exchange, the classic rsync cost model with its optimal block
  size, and the multi-round recursive-splitting upper bound, all in bits.

The test-suite cross-checks the *measured* protocol against these
formulas: its cost must sit between the lower bound and the multi-round
upper bound on controlled workloads.
"""

from repro.theory.bounds import (
    exchange_lower_bound_bits,
    multiround_upper_bound_bits,
    optimal_rsync_block_size,
    rsync_cost_model_bits,
)
from repro.theory.editdistance import block_divergence, levenshtein

__all__ = [
    "block_divergence",
    "exchange_lower_bound_bits",
    "levenshtein",
    "multiround_upper_bound_bits",
    "optimal_rsync_block_size",
    "rsync_cost_model_bits",
]
