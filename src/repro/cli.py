"""Command-line interface: synchronise files or directories, run demos.

Installed as ``repro-sync`` (or ``python -m repro.cli``)::

    repro-sync sync OLD NEW             # one file or one directory pair
    repro-sync sync OLD NEW --method rsync
    repro-sync bench --workload gcc     # quick method comparison table

Both endpoints are local paths — the tool reports the bytes the protocol
*would* move over a network, which is the quantity the paper studies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import run_method_on_collection, render_table
from repro.bench.methods import (
    FullTransferMethod,
    MultiroundRsyncMethod,
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    SyncMethod,
    VcdiffMethod,
    ZdeltaMethod,
    standard_methods,
)
from repro.core import ProtocolConfig
from repro.exceptions import ReproError
from repro.grouptesting import strategy_names
from repro.workloads import emacs_like, gcc_like, make_web_collection

_METHOD_FACTORIES = {
    "ours": lambda args: OursMethod(_config_from_args(args)),
    "multiround": lambda args: MultiroundRsyncMethod(),
    "rsync": lambda args: RsyncMethod(block_size=args.rsync_block),
    "rsync-opt": lambda args: RsyncOptimalMethod(),
    "zdelta": lambda args: ZdeltaMethod(),
    "vcdiff": lambda args: VcdiffMethod(),
    "full": lambda args: FullTransferMethod(),
}


def _worker_count(text: str) -> int:
    """argparse type for --workers: non-negative int, 0 = one per CPU."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU), got {value}"
        )
    return value


def _config_from_args(args: argparse.Namespace) -> ProtocolConfig:
    return ProtocolConfig(
        min_block_size=args.min_block,
        continuation_min_block_size=args.continuation_min,
        verification=args.verification,
    )


def _load_side(path: Path) -> dict[str, bytes]:
    """A file becomes a single-entry collection; a directory is walked."""
    if path.is_file():
        return {path.name: path.read_bytes()}
    if path.is_dir():
        return {
            str(p.relative_to(path)): p.read_bytes()
            for p in sorted(path.rglob("*"))
            if p.is_file()
        }
    raise ReproError(f"{path} is neither a file nor a directory")


def _fault_plan_from_args(args: argparse.Namespace):
    """Build a FaultPlan from --fault-rate/--fault-seed (None if clean)."""
    if not args.fault_rate:
        return None
    from repro.net.faults import FaultPlan

    return FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)


def _retry_policy_from_args(args: argparse.Namespace):
    if args.retries is None:
        return None
    from repro.resilience import RetryPolicy

    return RetryPolicy(max_attempts=args.retries)


def _cmd_sync(args: argparse.Namespace) -> int:
    old_path, new_path = Path(args.old), Path(args.new)
    if old_path.is_file() and new_path.is_file():
        # A plain file pair is one logical file regardless of basenames.
        old_side = {"file": old_path.read_bytes()}
        new_side = {"file": new_path.read_bytes()}
    else:
        old_side = _load_side(old_path)
        new_side = _load_side(new_path)

    fault_plan = _fault_plan_from_args(args)
    if args.batched:
        if args.method != "ours":
            print("error: --batched requires --method ours", file=sys.stderr)
            return 2
        if fault_plan is not None:
            print("error: --batched does not support fault injection",
                  file=sys.stderr)
            return 2
        if args.checkpoint_dir is not None or args.resume:
            print("error: --batched does not support checkpoints",
                  file=sys.stderr)
            return 2
        return _sync_batched(args, old_side, new_side)
    if args.pipeline:
        if args.method not in ("ours", "multiround"):
            print("error: --pipeline requires --method ours or multiround",
                  file=sys.stderr)
            return 2
        if fault_plan is not None:
            print("error: --pipeline does not support fault injection",
                  file=sys.stderr)
            return 2
        if (
            args.retries is not None
            or args.adaptive_retry
            or args.deadline is not None
            or args.run_deadline is not None
            or args.breaker_threshold is not None
        ):
            print("error: --pipeline does not support retries, deadlines "
                  "or breakers", file=sys.stderr)
            return 2
        # Error isolation needs the sequential path; pipelined runs
        # always abort on failure.
        args.on_error = "raise"
    method: SyncMethod = _METHOD_FACTORIES[args.method](args)
    run = run_method_on_collection(
        method,
        old_side,
        new_side,
        workers=args.workers or None,
        use_arena=args.arena,
        on_error=args.on_error,
        fault_plan=fault_plan,
        retry_policy=_retry_policy_from_args(args),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        store=args.output,
        adaptive_retry=args.adaptive_retry,
        deadline_s=args.deadline,
        run_deadline_s=args.run_deadline,
        breaker_threshold=args.breaker_threshold,
        pipeline=args.pipeline,
        window=args.window,
        delta_memo=args.delta_memo,
        sibling_refs=args.sibling_refs,
        resemblance_threshold=args.resemblance_threshold,
    )
    adaptive_active = (
        args.adaptive_retry
        or args.deadline is not None
        or args.run_deadline is not None
        or args.breaker_threshold is not None
    )

    if args.json:
        print(
            json.dumps(
                {
                    "method": run.method,
                    "total_bytes": run.total_bytes,
                    "manifest_bytes": run.manifest_bytes,
                    "changed_bytes": run.changed_bytes,
                    "added_bytes": run.added_bytes,
                    "files_changed": run.files_changed,
                    "files_unchanged": run.files_unchanged,
                    "breakdown": run.breakdown,
                    "workers": run.workers,
                    "cpu_seconds": round(run.cpu_seconds, 4),
                    "cache_hits": run.cache_hits,
                    "cache_misses": run.cache_misses,
                    "ref_cache_hits": run.ref_cache_hits,
                    "ref_cache_misses": run.ref_cache_misses,
                    "arena_used": run.arena_used,
                    "arena_bytes": run.arena_bytes,
                    "retries": run.retries,
                    "fallback_files": run.fallback_files,
                    "failed_files": run.failed_files,
                    "retransmitted_bytes": run.retransmitted_bytes,
                    "recovery_seconds": round(run.recovery_seconds, 4),
                    "rounds_salvaged": run.rounds_salvaged,
                    "resume_handshake_bits": run.resume_handshake_bits,
                    "checkpoint_bytes_written": run.checkpoint_bytes_written,
                    "health_score": round(run.health_score, 4),
                    "breaker_opens": run.breaker_opens,
                    "deadline_salvages": run.deadline_salvages,
                    "adaptive_backoff_s": round(run.adaptive_backoff_s, 4),
                    "collisions_detected": run.collisions_detected,
                    "repair_rounds": run.repair_rounds,
                    "repair_bytes": run.repair_bytes,
                    "pipelined": run.pipelined,
                    "waves": run.waves,
                    "mux_overhead_bytes": run.mux_overhead_bytes,
                    "roundtrips_on_wire": run.roundtrips_on_wire,
                    "link_wall_clock_s": round(run.link_wall_clock_s, 4),
                    "dedup_hits": run.dedup_hits,
                    "delta_memo_hits": run.delta_memo_hits,
                    "delta_memo_misses": run.delta_memo_misses,
                    "sibling_refs_used": run.sibling_refs_used,
                    "bytes_saved_vs_self_ref": run.bytes_saved_vs_self_ref,
                },
                indent=2,
            )
        )
    else:
        total_new = sum(len(v) for v in new_side.values())
        print(f"method          : {run.method}")
        print(f"files           : {run.files_changed} changed, "
              f"{run.files_unchanged} unchanged")
        print(f"bytes on wire   : {run.total_bytes:,} "
              f"({run.total_bytes / max(total_new, 1):.1%} of target size)")
        print(f"  manifest      : {run.manifest_bytes:,}")
        print(f"  changed files : {run.changed_bytes:,}")
        print(f"  added files   : {run.added_bytes:,}")
        print(f"workers         : {run.workers} "
              f"(cpu {run.cpu_seconds:.2f}s, cache "
              f"{run.cache_hits}/{run.cache_hits + run.cache_misses} hits)")
        if run.arena_used:
            print(f"arena           : {run.arena_bytes:,} B shared-memory "
                  f"payload (zero-copy dispatch)")
        if fault_plan is not None or run.retries or run.failed_files:
            print(f"resilience      : {run.retries} retries, "
                  f"{run.fallback_files} fallbacks, "
                  f"{run.failed_files} failed, "
                  f"{run.retransmitted_bytes:,} B retransmitted "
                  f"(~{run.recovery_seconds:.1f}s recovery)")
        if adaptive_active:
            print(f"link health     : {run.health_score:.2f} score, "
                  f"{run.breaker_opens} breaker opens, "
                  f"{run.deadline_salvages} deadline salvages, "
                  f"{run.adaptive_backoff_s:.1f}s adaptive backoff")
        if run.collisions_detected:
            print(f"integrity       : {run.collisions_detected} collisions "
                  f"detected, {run.repair_rounds} repair rounds, "
                  f"{run.repair_bytes:,} B surgical repair")
        print(f"link latency    : {run.roundtrips_on_wire} roundtrips on "
              f"wire (~{run.link_wall_clock_s:.1f}s modelled wall clock)")
        if run.pipelined:
            print(f"pipeline        : {run.waves} waves, "
                  f"{run.mux_overhead_bytes:,} B mux framing overhead")
        if (
            args.delta_memo
            or args.sibling_refs
            or run.dedup_hits
            or run.delta_memo_hits
            or run.sibling_refs_used
        ):
            print(f"reuse           : {run.dedup_hits} dedup hits, "
                  f"{run.delta_memo_hits}/"
                  f"{run.delta_memo_hits + run.delta_memo_misses} memo hits, "
                  f"{run.sibling_refs_used} sibling refs "
                  f"({run.bytes_saved_vs_self_ref:,} B saved)")
        if args.checkpoint_dir is not None:
            print(f"checkpoints     : {run.rounds_salvaged} rounds salvaged, "
                  f"{run.resume_handshake_bits} handshake bits, "
                  f"{run.checkpoint_bytes_written:,} B journalled locally")
    return 0


def _sync_batched(
    args: argparse.Namespace,
    old_side: dict[str, bytes],
    new_side: dict[str, bytes],
) -> int:
    from repro.collection import sync_collection_batched

    report = sync_collection_batched(
        old_side, new_side, _config_from_args(args)
    )
    if args.json:
        print(
            json.dumps(
                {
                    "method": report.method,
                    "total_bytes": report.total_bytes,
                    "manifest_bytes": report.manifest_bytes,
                    "changed_bytes": report.changed_transfer_bytes,
                    "added_bytes": report.added_bytes,
                    "files_changed": report.files_changed,
                    "files_unchanged": report.files_unchanged,
                },
                indent=2,
            )
        )
    else:
        print(f"method          : {report.method}")
        print(f"files           : {report.files_changed} changed, "
              f"{report.files_unchanged} unchanged")
        print(f"bytes on wire   : {report.total_bytes:,}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Post-crash sweep: quarantine temporaries, list resumable journals."""
    from repro.collection import load_manifest
    from repro.resilience import QUARANTINE_DIR, recover_store

    manifest = load_manifest(args.manifest) if args.manifest else None
    report = recover_store(
        args.path, manifest=manifest, checkpoint_dir=args.checkpoint_dir
    )
    purged: list[str] = []
    quarantine = Path(args.path) / QUARANTINE_DIR
    if args.purge and quarantine.is_dir():
        # Listing above preserved the evidence for this run's output;
        # now the incident is acknowledged, empty the quarantine.
        for entry in sorted(quarantine.iterdir()):
            if entry.is_file():
                purged.append(str(entry))
                entry.unlink()
        try:
            quarantine.rmdir()
        except OSError:
            pass  # non-file residue: leave the directory in place
    if args.json:
        print(
            json.dumps(
                {
                    "root": str(report.root),
                    "clean": report.clean,
                    "quarantined": [str(p) for p in report.quarantined],
                    "missing": report.missing,
                    "stale": report.stale,
                    "pending_journals": [
                        str(p) for p in report.pending_journals
                    ],
                    "purged": purged,
                },
                indent=2,
            )
        )
    else:
        for path in report.quarantined:
            print(f"Q {path}")
        for name in report.missing:
            print(f"! missing {name}")
        for name in report.stale:
            print(f"! stale   {name}")
        for path in report.pending_journals:
            print(f"R {path}")
        if report.clean:
            print(f"{report.root}: clean")
        else:
            print(
                f"{len(report.quarantined)} quarantined, "
                f"{len(report.missing)} missing, {len(report.stale)} stale, "
                f"{len(report.pending_journals)} resumable journals"
            )
            if report.pending_journals:
                print("rerun the sync with --resume to salvage the "
                      "journalled rounds")
        if purged:
            print(f"purged {len(purged)} quarantined files")
        elif not args.purge and quarantine.is_dir():
            print("quarantine kept (pass --purge to empty it)")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    """Anti-entropy audit of a replica store, or the scrub-soak matrix."""
    if args.soak:
        from repro.bench.soak import run_scrub_soak

        report = run_scrub_soak(
            seeds=tuple(args.seeds),
            profile=args.profile,
            shape=args.shape,
            adaptive=not args.static,
        )
        print(report.to_json() if args.json else report.render())
        if args.out is not None:
            Path(args.out).write_text(report.to_json() + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        return 0 if report.all_converged else 1

    if args.path is None or args.manifest is None:
        print("error: scrub needs a store PATH and --manifest "
              "(or --soak for the synthetic matrix)", file=sys.stderr)
        return 2
    from repro.collection import StoreScrubber, load_manifest

    manifest = load_manifest(args.manifest)
    scrubber = StoreScrubber(
        args.path,
        manifest,
        cursor_path=args.cursor,
        rate_limit_bps=args.rate_limit,
    )
    report = scrubber.scrub(
        max_entries=args.max_entries,
        quarantine=not args.no_quarantine,
    )
    repaired = None
    if args.repair and not report.clean:
        if args.source is None:
            print("error: --repair needs --source (the pristine "
                  "collection to fetch damaged entries from)",
                  file=sys.stderr)
            return 2
        source = _load_side(Path(args.source))
        repaired = scrubber.repair(
            source,
            report=report,
            adaptive_retry=True,
            on_error="fallback",
        )
    if args.json:
        payload: dict[str, object] = {
            "root": str(report.root),
            "scanned": report.scanned,
            "ok": report.ok,
            "divergent": report.divergent,
            "missing": report.missing,
            "quarantined": [str(p) for p in report.quarantined],
            "completed": report.completed,
            "bytes_read": report.bytes_read,
            "clean": report.clean,
        }
        if repaired is not None:
            payload["repair"] = {
                "total_bytes": repaired.total_bytes,
                "files_changed": repaired.files_changed,
                "collisions_detected": repaired.collisions_detected,
                "repair_rounds": repaired.repair_rounds,
                "repair_bytes": repaired.repair_bytes,
            }
        print(json.dumps(payload, indent=2))
    else:
        for name in report.divergent:
            print(f"! divergent {name}")
        for name in report.missing:
            print(f"! missing   {name}")
        progress = "pass complete" if report.completed else \
            "pass paused (cursor saved)"
        print(f"scrubbed {report.scanned} entries "
              f"({report.bytes_read:,} B): {report.ok} ok, "
              f"{len(report.divergent)} divergent, "
              f"{len(report.missing)} missing — {progress}")
        if repaired is not None:
            print(f"repaired {repaired.files_changed + len(report.missing)} "
                  f"entries with {repaired.total_bytes:,} B on the wire")
    if repaired is not None:
        return 0 if scrubber.scrub_all(quarantine=False).clean else 1
    return 0 if report.clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos-soak matrix: shaped fault schedules × seeds over a workload."""
    from repro.bench.soak import run_soak
    from repro.net.chaos import CHAOS_SHAPES

    shapes = tuple(args.shapes)
    for shape in shapes:
        if shape not in CHAOS_SHAPES:
            print(f"error: unknown shape {shape!r} "
                  f"(choose from {', '.join(CHAOS_SHAPES)})",
                  file=sys.stderr)
            return 2
    report = run_soak(
        shapes=shapes,
        seeds=tuple(args.seeds),
        profile=args.profile,
        adaptive=not args.static,
        breaker_threshold=args.breaker_threshold,
    )
    rendered = report.to_json() if args.json else report.render()
    print(rendered)
    if args.out is not None:
        Path(args.out).write_text(report.to_json() + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.all_cells_consistent else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Round-by-round trace of one file pair."""
    from repro.core import synchronize
    from repro.core.trace import summarize_trace

    old_data = Path(args.old).read_bytes()
    new_data = Path(args.new).read_bytes()
    config = _config_from_args(args).with_overrides(collect_trace=True)
    result = synchronize(old_data, new_data, config)
    for trace in result.trace:
        print(trace.describe())
    summary = summarize_trace(result.trace)
    print(
        f"\ntotal {result.total_bytes:,} B "
        f"({result.map_bytes:,} map + {result.delta_bytes:,} delta), "
        f"{summary['hashes_sent']} hashes "
        f"({summary['derived_hashes']} derived free), "
        f"coverage {result.known_fraction:.1%}"
    )
    return 0


def _cmd_manifest(args: argparse.Namespace) -> int:
    """Create or diff on-disk fingerprint manifests."""
    from repro.collection import (
        Manifest,
        diff_manifests,
        load_manifest,
        save_manifest,
    )

    if args.action == "create":
        files = _load_side(Path(args.path))
        manifest = Manifest.of_collection(files)
        save_manifest(manifest, args.output)
        print(f"wrote {len(manifest)} entries to {args.output}")
        return 0
    # action == "diff": stored manifest (the past) vs a directory (now).
    stored = load_manifest(args.manifest_file)
    current = Manifest.of_collection(_load_side(Path(args.path)))
    diff = diff_manifests(stored, current)
    if args.json:
        print(
            json.dumps(
                {
                    "changed": diff.changed,
                    "added": diff.added,
                    "removed": diff.removed,
                    "unchanged": len(diff.unchanged),
                },
                indent=2,
            )
        )
    else:
        for name in diff.changed:
            print(f"M {name}")
        for name in diff.added:
            print(f"A {name}")
        for name in diff.removed:
            print(f"D {name}")
        print(
            f"{len(diff.changed)} changed, {len(diff.added)} added, "
            f"{len(diff.removed)} removed, {len(diff.unchanged)} unchanged"
        )
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    """Measure the substrate perf baselines; record or compare them.

    Five baselines make up the perf gate: the parallel-substrate record
    (``BENCH_parallel.json``), the delta-encode throughput record
    (``BENCH_delta.json``), the whole-round protocol-engine record
    (``BENCH_protocol.json``), the pipelined-scheduler latency record
    (``BENCH_pipeline.json``), and the cross-file reuse record
    (``BENCH_reuse.json``).  All are measured, printed, and compared
    (or rewritten with ``--update``) in one invocation so CI stays a
    single command.
    """
    from repro.bench.perfbaseline import (
        compare_baselines,
        load_baseline,
        measure,
        measure_delta,
        measure_pipeline,
        measure_protocol,
        measure_reuse,
        render_baseline,
        save_baseline,
    )

    import os

    current = measure(workers=args.workers or os.cpu_count() or 1)
    measurements = [(Path(args.baseline), current)]
    if not args.no_delta:
        measurements.append((Path(args.delta_baseline), measure_delta()))
    if not args.no_protocol:
        measurements.append(
            (Path(args.protocol_baseline), measure_protocol())
        )
    if not args.no_pipeline:
        measurements.append(
            (Path(args.pipeline_baseline), measure_pipeline())
        )
    if not args.no_reuse:
        measurements.append(
            (Path(args.reuse_baseline), measure_reuse())
        )

    for _path, measurement in measurements:
        if args.json:
            print(measurement.to_json(), end="")
        else:
            print(render_baseline(measurement))

    if args.update:
        for path, measurement in measurements:
            save_baseline(measurement, path)
            print(f"wrote baseline to {path}")
        return 0

    findings: list[str] = []
    for path, measurement in measurements:
        if not path.exists():
            print(
                f"error: no baseline at {path} (record one with --update)",
                file=sys.stderr,
            )
            return 2
        findings += [
            f"[{path.name}] {finding}"
            for finding in compare_baselines(
                measurement, load_baseline(path), tolerance=args.tolerance
            )
        ]
    if findings:
        print("\nPERF REGRESSIONS:", file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return 1
    compared = ", ".join(str(path) for path, _measurement in measurements)
    print(f"\nno regressions vs {compared} "
          f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_action == "perf":
        return _cmd_bench_perf(args)
    if args.workload == "gcc":
        tree = gcc_like(scale=args.scale, seed=args.seed)
        old_side, new_side = tree.old, tree.new
    elif args.workload == "emacs":
        tree = emacs_like(scale=args.scale, seed=args.seed)
        old_side, new_side = tree.old, tree.new
    else:
        collection = make_web_collection(
            page_count=max(10, int(100 * args.scale)),
            days=(0, 1),
            seed=args.seed,
        )
        old_side, new_side = collection.snapshot(0), collection.snapshot(1)

    rows = []
    for method in standard_methods():
        run = run_method_on_collection(
            method,
            old_side,
            new_side,
            workers=args.workers or None,
            use_arena=args.arena,
        )
        rows.append(
            [
                method.name,
                f"{run.total_kb:,.1f}",
                f"{run.elapsed_seconds:.1f}",
                f"{run.cpu_seconds:.1f}",
            ]
        )
    print(
        render_table(
            ["method", "KB", "wall s", "cpu s"],
            rows,
            title=(
                f"workload={args.workload} scale={args.scale} "
                f"workers={args.workers}"
            ),
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sync",
        description="Bandwidth-efficient file synchronization (ICDE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sync = sub.add_parser("sync", help="synchronise a file or directory pair")
    sync.add_argument("old", help="outdated file or directory (the client)")
    sync.add_argument("new", help="current file or directory (the server)")
    sync.add_argument(
        "--method", choices=sorted(_METHOD_FACTORIES), default="ours"
    )
    sync.add_argument("--min-block", type=int, default=64,
                      help="minimum block size for global hashes")
    sync.add_argument("--continuation-min", type=int, default=16,
                      help="minimum block size for continuation hashes")
    sync.add_argument("--verification", choices=strategy_names(),
                      default="group2")
    sync.add_argument("--rsync-block", type=int, default=700,
                      help="block size for --method rsync")
    sync.add_argument("--json", action="store_true",
                      help="machine-readable output")
    sync.add_argument("--workers", type=_worker_count, default=1,
                      help="process count for changed-file fan-out "
                           "(0 = one per CPU)")
    sync.add_argument("--arena", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="dispatch multi-worker payloads through the "
                           "zero-copy shared-memory arena (default: auto "
                           "when available; --no-arena forces pickling)")
    sync.add_argument("--batched", action="store_true",
                      help="share roundtrips across all changed files "
                           "(only with --method ours)")
    sync.add_argument("--pipeline", action="store_true",
                      help="interleave the changed files' protocol rounds "
                           "over one multiplexed channel, hiding link "
                           "latency (only with --method ours/multiround)")
    sync.add_argument("--window", type=int, default=8,
                      help="max files in flight under --pipeline "
                           "(default 8)")
    sync.add_argument("--delta-memo", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="memoize delta instruction lists and payloads "
                           "by content fingerprint pair (default: off, or "
                           "the REPRO_DELTA_MEMO env setting)")
    sync.add_argument("--sibling-refs", action="store_true",
                      help="delta-encode added files against similar "
                           "sibling files already on the client "
                           "(min-hash resemblance lookup)")
    sync.add_argument("--resemblance-threshold", type=float, default=0.5,
                      help="minimum estimated resemblance before a "
                           "sibling reference is attempted (default 0.5)")
    sync.add_argument("--fault-rate", type=float, default=0.0,
                      help="inject channel faults (corruption/truncation/"
                           "drops) at this per-message rate")
    sync.add_argument("--fault-seed", type=int, default=0,
                      help="seed for the deterministic fault plan")
    sync.add_argument("--on-error", choices=("raise", "skip", "fallback"),
                      default="fallback",
                      help="per-file error isolation: abort, keep the old "
                           "copy, or rescue with a full transfer")
    sync.add_argument("--retries", type=int, default=None,
                      help="retry attempts per ladder rung before "
                           "degrading (default: supervisor default of 3)")
    sync.add_argument("--adaptive-retry", action="store_true",
                      help="replace the static retry schedule with the "
                           "health-aware AIMD policy (widens backoff on "
                           "transient faults, tightens on clean streaks)")
    sync.add_argument("--deadline", type=float, default=None,
                      help="per-file simulated-time budget in seconds; a "
                           "file over budget is reported failed with its "
                           "checkpointed rounds salvaged")
    sync.add_argument("--run-deadline", type=float, default=None,
                      help="whole-run simulated-time budget in seconds "
                           "shared by every file (forces --workers 1)")
    sync.add_argument("--breaker-threshold", type=int, default=None,
                      help="open a per-file circuit breaker after this "
                           "many consecutive failed attempts")
    sync.add_argument("--checkpoint-dir", default=None,
                      help="journal completed protocol rounds here so "
                           "interrupted sessions can resume instead of "
                           "restarting")
    sync.add_argument("--resume", action="store_true",
                      help="honour checkpoint journals left by a previous "
                           "(crashed) run; requires --checkpoint-dir")
    sync.add_argument("--output", default=None,
                      help="materialise the reconstructed collection into "
                           "this directory (every file written atomically)")
    sync.set_defaults(handler=_cmd_sync)

    trace = sub.add_parser(
        "trace", help="print the round-by-round protocol trace for a "
                      "file pair"
    )
    trace.add_argument("old")
    trace.add_argument("new")
    trace.add_argument("--min-block", type=int, default=64)
    trace.add_argument("--continuation-min", type=int, default=16)
    trace.add_argument("--verification", choices=strategy_names(),
                       default="group2")
    trace.set_defaults(handler=_cmd_trace)

    manifest = sub.add_parser(
        "manifest", help="create or diff fingerprint manifests"
    )
    manifest_sub = manifest.add_subparsers(dest="action", required=True)
    manifest_create = manifest_sub.add_parser(
        "create", help="fingerprint a directory into a manifest file"
    )
    manifest_create.add_argument("path")
    manifest_create.add_argument("-o", "--output", required=True)
    manifest_create.set_defaults(handler=_cmd_manifest)
    manifest_diff = manifest_sub.add_parser(
        "diff", help="what changed in a directory since a stored manifest"
    )
    manifest_diff.add_argument("manifest_file")
    manifest_diff.add_argument("path")
    manifest_diff.add_argument("--json", action="store_true")
    manifest_diff.set_defaults(handler=_cmd_manifest)

    bench = sub.add_parser("bench", help="quick method comparison on a "
                                         "synthetic workload, or the "
                                         "substrate perf baseline")
    bench.add_argument("--workload", choices=("gcc", "emacs", "web"),
                       default="gcc")
    bench.add_argument("--scale", type=float, default=0.1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--workers", type=_worker_count, default=1,
                       help="process count for changed-file fan-out "
                            "(0 = one per CPU)")
    bench.add_argument("--arena", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="dispatch multi-worker payloads through the "
                            "zero-copy shared-memory arena (default: auto)")
    bench.set_defaults(handler=_cmd_bench, bench_action=None)
    bench_sub = bench.add_subparsers(dest="bench_action")
    bench_perf = bench_sub.add_parser(
        "perf", help="time core substrate ops and the arena vs pickle "
                     "dispatch paths; compare against BENCH_parallel.json"
    )
    bench_perf.add_argument("--baseline", default="BENCH_parallel.json",
                            help="baseline JSON to compare against or "
                                 "update")
    bench_perf.add_argument("--delta-baseline", default="BENCH_delta.json",
                            help="delta-throughput baseline JSON to "
                                 "compare against or update")
    bench_perf.add_argument("--no-delta", action="store_true",
                            help="skip the delta-throughput measurement "
                                 "(substrate ops only)")
    bench_perf.add_argument("--protocol-baseline",
                            default="BENCH_protocol.json",
                            help="protocol-engine baseline JSON to "
                                 "compare against or update")
    bench_perf.add_argument("--no-protocol", action="store_true",
                            help="skip the protocol-engine measurement")
    bench_perf.add_argument("--pipeline-baseline",
                            default="BENCH_pipeline.json",
                            help="pipelined-scheduler latency baseline JSON "
                                 "to compare against or update")
    bench_perf.add_argument("--no-pipeline", action="store_true",
                            help="skip the pipeline-latency measurement")
    bench_perf.add_argument("--reuse-baseline",
                            default="BENCH_reuse.json",
                            help="cross-file reuse baseline JSON to "
                                 "compare against or rewrite")
    bench_perf.add_argument("--no-reuse", action="store_true",
                            help="skip the cross-file reuse measurement")
    bench_perf.add_argument("--update", action="store_true",
                            help="record the current measurement as the "
                                 "new baseline instead of comparing")
    bench_perf.add_argument("--tolerance", type=float, default=0.5,
                            help="allowed slowdown fraction before an op "
                                 "counts as a regression (0.5 = 50%%)")
    bench_perf.add_argument("--workers", type=_worker_count, default=4,
                            help="executor worker count for the dispatch "
                                 "measurements (0 = one per CPU)")
    bench_perf.add_argument("--json", action="store_true",
                            help="print the raw measurement JSON")
    bench_perf.set_defaults(handler=_cmd_bench, bench_action="perf")

    chaos = sub.add_parser(
        "chaos", help="soak the resilience stack: shaped fault schedules "
                      "× seeds over a synthetic workload; exits non-zero "
                      "if any cell loses a healthy file"
    )
    chaos.add_argument("--shapes", nargs="+",
                       default=["bursty", "periodic", "degrading"],
                       help="fault schedule shapes to sweep "
                            "(steady, bursty, periodic, degrading)")
    chaos.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3],
                       help="fault plan seeds to sweep")
    chaos.add_argument("--profile", choices=("short", "long"),
                       default="short",
                       help="workload scale / fault rate / deadline preset")
    chaos.add_argument("--static", action="store_true",
                       help="run the static retry baseline instead of the "
                            "adaptive stack (no breakers, no deadlines)")
    chaos.add_argument("--breaker-threshold", type=int, default=3,
                       help="per-file breaker threshold for adaptive runs")
    chaos.add_argument("--json", action="store_true",
                       help="print the matrix as JSON instead of a table")
    chaos.add_argument("--out", default=None,
                       help="also write the JSON report to this path "
                            "(the CI chaos-soak artifact)")
    chaos.set_defaults(handler=_cmd_chaos)

    recover = sub.add_parser(
        "recover", help="sweep a replica directory after a crash: "
                        "quarantine orphaned temporaries, report pending "
                        "checkpoint journals"
    )
    recover.add_argument("path", help="replica root to sweep")
    recover.add_argument("--manifest", default=None,
                         help="stored manifest to verify files against")
    recover.add_argument("--checkpoint-dir", default=None,
                         help="checkpoint directory to scan for resumable "
                              "session journals")
    recover.add_argument("--json", action="store_true")
    recover.add_argument("--purge", action="store_true",
                         help="after listing, empty the quarantine "
                              "directory (without this flag quarantined "
                              "evidence is always kept)")
    recover.set_defaults(handler=_cmd_recover)

    scrub = sub.add_parser(
        "scrub", help="anti-entropy audit: re-fingerprint a replica store "
                      "against its manifest, quarantine divergence, "
                      "optionally repair it; or run the scrub-soak matrix"
    )
    scrub.add_argument("path", nargs="?", default=None,
                       help="replica store root to audit")
    scrub.add_argument("--manifest", default=None,
                       help="stored manifest recording the expected "
                            "fingerprints")
    scrub.add_argument("--cursor", default=None,
                       help="cursor file making bounded scrubs resumable "
                            "across invocations")
    scrub.add_argument("--max-entries", type=int, default=None,
                       help="audit at most this many entries, parking the "
                            "cursor for the next invocation")
    scrub.add_argument("--rate-limit", type=int, default=None,
                       help="bound the audit's read bandwidth "
                            "(bytes/second)")
    scrub.add_argument("--no-quarantine", action="store_true",
                       help="report divergence without copying evidence "
                            "into the quarantine directory")
    scrub.add_argument("--repair", action="store_true",
                       help="sync the damaged entries back from --source "
                            "(adaptive supervisor, full-transfer rescue)")
    scrub.add_argument("--source", default=None,
                       help="pristine collection directory to repair from")
    scrub.add_argument("--soak", action="store_true",
                       help="run the synthetic bit-rot soak matrix instead "
                            "of auditing a real store; exits non-zero "
                            "unless every replica converges")
    scrub.add_argument("--profile", choices=("short", "long"),
                       default="short",
                       help="soak workload scale / damage / fault preset")
    scrub.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3],
                       help="soak bit-rot seeds to sweep")
    scrub.add_argument("--shape", default="bursty",
                       help="fault schedule shape for the soak's repair "
                            "link")
    scrub.add_argument("--static", action="store_true",
                       help="soak with the static retry policy instead of "
                            "the adaptive stack")
    scrub.add_argument("--json", action="store_true",
                       help="machine-readable output")
    scrub.add_argument("--out", default=None,
                       help="also write the soak JSON report to this path "
                            "(the CI integrity artifact)")
    scrub.set_defaults(handler=_cmd_scrub)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
