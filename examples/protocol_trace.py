#!/usr/bin/env python
"""Watch the protocol work, round by round.

Enables trace collection and prints what each sub-phase sent (hash kinds
and widths), how many candidates the client found, and how many were
confirmed — the mechanics behind Figure 5.2 of the paper, live.

Run with::

    python examples/protocol_trace.py
"""

from __future__ import annotations

import random

from repro import ProtocolConfig, synchronize
from repro.core.trace import summarize_trace
from repro.workloads import EditProfile, TextGenerator, mutate


def main() -> None:
    generator = TextGenerator(seed=77)
    rng = random.Random(77)
    old = generator.generate(40_000, rng)
    new = mutate(
        old,
        rng,
        EditProfile(edit_count=6, cluster_count=2, min_size=10, max_size=120),
        content=generator.snippet,
    )

    config = ProtocolConfig(collect_trace=True)
    result = synchronize(old, new, config)
    assert result.reconstructed == new

    print(f"file: {len(old):,} B -> {len(new):,} B, "
          f"{result.total_bytes:,} B on the wire "
          f"({result.map_bytes:,} map + {result.delta_bytes:,} delta)\n")
    for trace in result.trace:
        print(trace.describe())

    summary = summarize_trace(result.trace)
    print("\nsummary:")
    print(f"  hashes sent        : {summary['hashes_sent']}"
          f" ({summary['global_hashes']} global,"
          f" {summary['continuation_hashes']} continuation,"
          f" {summary['derived_hashes']} derived-for-free)")
    print(f"  hash bits          : {summary['hash_bits']:,}")
    print(f"  verification bits  : {summary['verification_bits']:,}")
    print(f"  candidates         : {summary['candidates']}"
          f" -> {summary['accepted']} confirmed")
    print(f"  continuation harvest rate: "
          f"{result.continuation_harvest_rate:.0%}")
    print(f"  map coverage       : {result.known_fraction:.1%}")


if __name__ == "__main__":
    main()
