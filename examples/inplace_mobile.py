#!/usr/bin/env python
"""In-place updates for space-constrained clients.

A mobile client (the In-place rsync scenario, reference [40] of the
paper) cannot afford a second copy of the file while applying the delta:
the update must happen inside the old file's buffer.  Copies are then
ordered so nothing reads a region that was already overwritten, and
dependency *cycles* are broken by fetching those blocks as literals.

This example shows the machinery on a pathological layout (a block
rotation, which is one giant cycle) and on a realistic edited document.

Run with::

    python examples/inplace_mobile.py
"""

from __future__ import annotations

import random

from repro.rsync import (
    apply_tokens_in_place,
    compute_signatures,
    match_tokens,
)
from repro.rsync.matcher import Reference
from repro.workloads import EditProfile, TextGenerator, mutate


def show(title: str, old: bytes, new: bytes, block_size: int) -> None:
    signatures = compute_signatures(old, block_size)
    tokens = match_tokens(new, signatures, strong_bytes=2)
    result = apply_tokens_in_place(old, tokens, block_size)
    assert result.data == new
    copies = sum(1 for t in tokens if isinstance(t, Reference))
    print(f"{title}")
    print(f"  file {len(old):,} -> {len(new):,} B, block size {block_size}")
    print(f"  {result.operations} operations ({copies} block copies)")
    print(
        f"  cycle-breaking literals: {result.converted_literal_bytes:,} B "
        f"({result.converted_literal_bytes / max(len(new), 1):.1%} of the file)"
    )
    print()


def main() -> None:
    rng = random.Random(5)

    # Pathological: rotate all blocks one slot left -> one big cycle.
    blocks = [bytes(rng.randrange(256) for _ in range(1024)) for _ in range(8)]
    old = b"".join(blocks)
    rotated = b"".join(blocks[1:] + blocks[:1])
    show("block rotation (one 8-cycle)", old, rotated, 1024)

    # Realistic: an edited document. Forward copies dominate; the
    # ordering alone resolves almost everything.
    generator = TextGenerator(seed=5)
    base = generator.generate(80_000, rng)
    edited = mutate(
        base,
        rng,
        EditProfile(edit_count=15, cluster_count=4, min_size=10,
                    max_size=300),
        content=generator.snippet,
    )
    show("edited document", base, edited, 700)

    print("The rotation needs exactly one converted block (breaking the\n"
          "cycle); ordinary edits reorder cleanly with zero extra bytes.")


if __name__ == "__main__":
    main()
