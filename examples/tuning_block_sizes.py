#!/usr/bin/env python
"""Explore the protocol's main tuning knob: the minimum block size.

The paper's Figures 6.1/6.2 show a U-shape: recursing to very small
blocks inflates the map-construction cost faster than it shrinks the
final delta.  This example reproduces the trade-off on a single file pair
and shows how continuation hashes move the sweet spot.

Run with::

    python examples/tuning_block_sizes.py
"""

from __future__ import annotations

import random

from repro import ProtocolConfig, synchronize
from repro.bench import render_table
from repro.workloads import EditProfile, TextGenerator, mutate


def main() -> None:
    generator = TextGenerator(seed=21)
    rng = random.Random(21)
    old = generator.generate(120_000, rng)
    new = mutate(
        old,
        rng,
        EditProfile(edit_count=30, cluster_count=6, min_size=6, max_size=150),
        content=generator.snippet,
    )

    rows = []
    for min_block in (512, 256, 128, 64, 32, 16):
        plain = synchronize(
            old, new,
            ProtocolConfig(min_block_size=min_block,
                           continuation_min_block_size=None),
        )
        cont_floor = min(16, min_block)
        with_cont = synchronize(
            old, new,
            ProtocolConfig(min_block_size=min_block,
                           continuation_min_block_size=cont_floor),
        )
        assert plain.reconstructed == new and with_cont.reconstructed == new
        rows.append(
            [
                min_block,
                plain.map_bytes,
                plain.delta_bytes,
                plain.total_bytes,
                with_cont.total_bytes,
            ]
        )

    print(
        render_table(
            ["min block", "map B", "delta B", "total B",
             "total B (+continuation)"],
            rows,
            title="Minimum block size trade-off (single 120 KB file)",
        )
    )
    best_plain = min(rows, key=lambda r: r[3])
    best_cont = min(rows, key=lambda r: r[4])
    print(
        f"\nbest without continuation: min block {best_plain[0]} "
        f"({best_plain[3]:,} B)"
    )
    print(
        f"best with continuation   : min block {best_cont[0]} "
        f"({best_cont[4]:,} B)"
    )


if __name__ == "__main__":
    main()
