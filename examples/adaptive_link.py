#!/usr/bin/env python
"""Adaptive synchronization: probe the files, then pick parameters.

The paper's §7 sketches an ideal tool that "would be adaptive and thus
choose the best set of parameters and number of roundtrips based on the
characteristics of the data set and communication link."  This example
runs that tool on three very different file pairs over two links and
shows the configuration it picks each time.

Run with::

    python examples/adaptive_link.py
"""

from __future__ import annotations

import random

from repro import LinkModel, SimulatedChannel, synchronize
from repro.core import adaptive_synchronize
from repro.bench import render_table
from repro.workloads import EditProfile, TextGenerator, mutate


def make_pairs() -> dict[str, tuple[bytes, bytes]]:
    generator = TextGenerator(seed=31)
    rng = random.Random(31)
    base = generator.generate(50_000, rng)

    lightly_edited = mutate(
        base, rng,
        EditProfile(edit_count=4, cluster_count=2, min_size=8, max_size=60),
        content=generator.snippet,
    )
    heavily_edited = mutate(
        base, rng,
        EditProfile(edit_count=120, cluster_count=None, min_size=20,
                    max_size=400),
        content=generator.snippet,
    )
    unrelated = TextGenerator(seed=99).generate(50_000, random.Random(99))
    return {
        "lightly edited": (base, lightly_edited),
        "heavily edited": (base, heavily_edited),
        "unrelated": (base, unrelated),
    }


def main() -> None:
    links = {
        "dsl 50ms": LinkModel(bandwidth_bps=1_000_000, latency_s=0.05),
        "satellite 300ms": LinkModel(bandwidth_bps=1_000_000, latency_s=0.3),
    }
    rows = []
    for pair_name, (old, new) in make_pairs().items():
        for link_name, link in links.items():
            channel = SimulatedChannel(link)
            result, config = adaptive_synchronize(old, new, link, channel)
            assert result.reconstructed == new
            default_result = synchronize(old, new)
            rows.append(
                [
                    pair_name,
                    link_name,
                    config.min_block_size,
                    config.max_rounds or "-",
                    config.verification,
                    f"{result.total_bytes:,}",
                    f"{default_result.total_bytes:,}",
                    f"{channel.estimated_transfer_time():.1f}",
                ]
            )
    print(
        render_table(
            ["files", "link", "min blk", "max rounds", "verify",
             "adaptive B", "default B", "est s"],
            rows,
            title="Adaptive parameter selection (probe cost included)",
        )
    )


if __name__ == "__main__":
    main()
