#!/usr/bin/env python
"""Quickstart: synchronise one file pair and inspect the cost breakdown.

Run with::

    python examples/quickstart.py

Creates two versions of a file, synchronises the outdated copy over a
simulated slow link, and prints what travelled in each direction and
phase, next to the rsync and zdelta baselines.
"""

from __future__ import annotations

import random

from repro import LinkModel, ProtocolConfig, SimulatedChannel, synchronize
from repro.delta import zdelta_size
from repro.rsync import rsync_sync
from repro.workloads import EditProfile, TextGenerator, mutate


def main() -> None:
    # 1. Build a ~60 KB "source file" and an edited successor.
    generator = TextGenerator(seed=7)
    rng = random.Random(7)
    old_version = generator.generate(60_000, rng)
    new_version = mutate(
        old_version,
        rng,
        EditProfile(edit_count=12, cluster_count=3, min_size=8, max_size=200),
        content=generator.snippet,
    )
    print(f"old file: {len(old_version):,} B, new file: {len(new_version):,} B")

    # 2. Synchronise over a 1 Mbit/s link with 50 ms latency.
    channel = SimulatedChannel(LinkModel(bandwidth_bps=1_000_000, latency_s=0.05))
    result = synchronize(old_version, new_version, ProtocolConfig(), channel)
    assert result.reconstructed == new_version

    print("\n== our protocol ==")
    print(f"total bytes      : {result.total_bytes:,}")
    print(f"  map phase      : {result.map_bytes:,}")
    print(f"  final delta    : {result.delta_bytes:,}")
    print(f"  client->server : {result.stats.client_to_server_bytes:,}")
    print(f"  server->client : {result.stats.server_to_client_bytes:,}")
    print(f"rounds           : {result.rounds} "
          f"({result.stats.roundtrips} one-way exchanges)")
    print(f"map coverage     : {result.known_fraction:.1%} of the new file")
    print(f"est. link time   : {channel.estimated_transfer_time():.2f} s")

    # 3. Baselines.
    rsync_result = rsync_sync(old_version, new_version)
    assert rsync_result.reconstructed == new_version
    lower_bound = zdelta_size(old_version, new_version)
    print("\n== baselines ==")
    print(f"rsync (default)  : {rsync_result.total_bytes:,} B "
          f"({rsync_result.total_bytes / result.total_bytes:.1f}x ours)")
    print(f"zdelta (local)   : {lower_bound:,} B "
          f"(ours is {result.total_bytes / lower_bound:.1f}x the lower bound)")


if __name__ == "__main__":
    main()
