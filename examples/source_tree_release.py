#!/usr/bin/env python
"""Ship a point release of a source tree to a mirror.

Mirrors of large source trees (the paper's gcc/emacs benchmark) re-fetch
whole releases even though consecutive releases share most bytes.  This
example updates a gcc-shaped tree from release N to N+1 with every method
and shows where the bytes go for ours (map construction vs final delta,
per direction).

Run with::

    python examples/source_tree_release.py
"""

from __future__ import annotations

from repro.bench import (
    format_kb,
    render_table,
    run_method_on_collection,
    standard_methods,
)
from repro.workloads import gcc_like


def main() -> None:
    tree = gcc_like(scale=0.25, seed=11)
    print(
        f"{tree.name}: {len(tree.old)} files, {tree.old_bytes / 1e6:.2f} MB "
        f"-> {len(tree.new)} files, {tree.new_bytes / 1e6:.2f} MB"
    )

    rows = []
    ours_breakdown: dict[str, int] = {}
    for method in standard_methods():
        run = run_method_on_collection(method, tree.old, tree.new)
        rows.append(
            [
                method.name,
                format_kb(run.total_bytes),
                format_kb(run.manifest_bytes),
                format_kb(run.changed_bytes),
                format_kb(run.added_bytes),
                f"{run.elapsed_seconds:.1f}s",
            ]
        )
        if method.name == "ours":
            ours_breakdown = run.breakdown

    print()
    print(
        render_table(
            ["method", "total KB", "manifest", "changed", "added", "cpu"],
            rows,
            title="Updating the mirror to the new release",
        )
    )

    print("\nWhere our protocol's bytes go (KB):")
    for key in sorted(ours_breakdown):
        print(f"  {key:<14} {format_kb(ours_breakdown[key]):>10}")


if __name__ == "__main__":
    main()
