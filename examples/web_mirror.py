#!/usr/bin/env python
"""Maintain a mirrored web-page collection over a slow link.

The paper's motivating application (§1.1): a client keeps a local copy of
a crawled page collection fresh by synchronising against the crawler's
current snapshot.  This example simulates a week of crawls and compares
the cost of updating daily, every two days, or weekly — the Table 6.2
scenario — then estimates wall-clock time on a DSL-class link.

Run with::

    python examples/web_mirror.py
"""

from __future__ import annotations

from repro import LinkModel
from repro.bench import (
    OursMethod,
    RsyncMethod,
    ZdeltaMethod,
    render_table,
    run_method_on_collection,
)
from repro.workloads import make_web_collection


def main() -> None:
    collection = make_web_collection(page_count=80, days=(0, 1, 2, 7), seed=3)
    base = collection.snapshot(0)
    print(
        f"collection: {collection.page_count} pages, "
        f"{collection.snapshot_bytes(0) / 1e6:.1f} MB per snapshot"
    )

    link = LinkModel(bandwidth_bps=1_000_000, latency_s=0.05)  # ~1 Mbit/s DSL
    rows = []
    for gap in (1, 2, 7):
        target = collection.snapshot(gap)
        changed = collection.changed_pages(0, gap)
        for method in (OursMethod(), RsyncMethod(), ZdeltaMethod()):
            run = run_method_on_collection(method, base, target)
            rows.append(
                [
                    f"every {gap}d",
                    method.name,
                    changed,
                    f"{run.total_kb:,.1f}",
                    f"{link.transfer_time(run.total_bytes, 0):.1f}",
                ]
            )
    print()
    print(
        render_table(
            ["update", "method", "pages changed", "KB", "link seconds"],
            rows,
            title="Cost of keeping the mirror fresh",
        )
    )
    print(
        "\nNote: longer gaps accumulate more divergence but amortise the\n"
        "manifest; per-update cost grows sublinearly with the gap."
    )


if __name__ == "__main__":
    main()
